// The shared wireless medium.
//
// One WirelessChannel per simulation: it knows every attached radio,
// and on each transmission computes per-receiver received power through
// the propagation model, delivering an energy arrival (after speed-of-
// light delay) to every radio above the detection floor. Whether the
// arrival is a decodable frame, carrier-sense energy, or interference
// is the *receiving* radio's business (see WifiPhy).
#pragma once

#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "phy/propagation.hpp"
#include "phy/wifi_phy.hpp"
#include "sim/simulator.hpp"

namespace wmn::phy {

class WirelessChannel {
 public:
  WirelessChannel(sim::Simulator& simulator,
                  std::unique_ptr<PropagationModel> propagation);

  WirelessChannel(const WirelessChannel&) = delete;
  WirelessChannel& operator=(const WirelessChannel&) = delete;

  // Register a radio. The radio must outlive the channel's use of it.
  void attach(WifiPhy* phy);

  // Broadcast `packet` from `src` to every other attached radio.
  // Called by WifiPhy::send(); not part of the public user API.
  void transmit(const WifiPhy& src, const net::Packet& packet, sim::Time duration);

  [[nodiscard]] std::size_t radio_count() const { return radios_.size(); }

  // Received power between two attached radios right now — used by
  // scenario builders to check topology connectivity before a run.
  [[nodiscard]] double link_rx_power_dbm(const WifiPhy& tx, const WifiPhy& rx) const;

  struct Counters {
    std::uint64_t transmissions = 0;
    std::uint64_t copies_delivered = 0;  // arrivals above detection floor
    std::uint64_t copies_dropped_floor = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  sim::Simulator& sim_;
  std::unique_ptr<PropagationModel> propagation_;
  std::vector<WifiPhy*> radios_;
  Counters counters_;
};

}  // namespace wmn::phy
