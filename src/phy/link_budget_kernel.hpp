// Batched link-budget evaluation over SoA candidate buffers.
//
// The channel's hot path is "one transmitter against K candidate
// receivers". Evaluating those links one at a time walks pointer-rich
// per-node state and pays a virtual propagation call per pair; this
// kernel hoists the candidates into structure-of-arrays buffers and
// evaluates the whole batch in two straight-line passes:
//
//   pass 1  distances   d[i] = link_distance_m(tx, rx[i])
//           (auto-vectorisable; optional explicit AVX2 path)
//   pass 2  powers      model.rx_power_dbm_batch(view)
//           (one virtual call per batch, model-specific tight loop)
//
// Determinism: every pass performs the same IEEE-754 operations as the
// scalar path, in the same per-element order. The AVX2 pass uses
// separate mul/add (never FMA contraction) and the correctly-rounded
// _mm256_sqrt_pd/_mm256_max_pd, so its lanes are bit-identical to the
// scalar loop; which path ran can never show in a fingerprint. Mode
// exists so tests can force the scalar path and compare.
//
// The explicit SIMD path is a build-time feature probe (CMake option
// WMN_SIMD, default ON, compiled only when the compiler accepts
// -mavx2) plus a runtime CPU check — binaries stay portable, and the
// scalar path is always compiled and always the fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mobility/vec2.hpp"
#include "phy/propagation.hpp"

namespace wmn::phy {

class LinkBudgetKernel {
 public:
  enum class Mode : std::uint8_t {
    kAuto,    // explicit SIMD when compiled in and the CPU has it
    kScalar,  // force the scalar/auto-vectorised loops (tests, gating)
  };

  // Reusable SoA buffers describing one transmitter's candidates.
  // Callers push (position, node id, payload index) tuples, then run
  // evaluate(); distance_m/power_dbm come back aligned element-wise.
  struct Batch {
    std::vector<double> rx_x;
    std::vector<double> rx_y;
    std::vector<std::uint32_t> rx_id;     // node ids (shadowing hash input)
    std::vector<std::uint32_t> rx_index;  // caller payload (attach index)
    std::vector<double> distance_m;       // out: floored link distance
    std::vector<double> power_dbm;        // out: received power

    void clear() {
      rx_x.clear();
      rx_y.clear();
      rx_id.clear();
      rx_index.clear();
    }

    void push(mobility::Vec2 pos, std::uint32_t id, std::uint32_t index) {
      rx_x.push_back(pos.x);
      rx_y.push_back(pos.y);
      rx_id.push_back(id);
      rx_index.push_back(index);
    }

    [[nodiscard]] std::size_t size() const { return rx_x.size(); }

    // Keep element i, dropping everything before the write cursor —
    // used by the channel's full-scan prefilter to compact in-range
    // survivors (with their distances) without a second buffer.
    void compact_keep(std::size_t write, std::size_t read) {
      rx_x[write] = rx_x[read];
      rx_y[write] = rx_y[read];
      rx_id[write] = rx_id[read];
      rx_index[write] = rx_index[read];
      distance_m[write] = distance_m[read];
    }

    void resize_down(std::size_t n) {
      rx_x.resize(n);
      rx_y.resize(n);
      rx_id.resize(n);
      rx_index.resize(n);
      distance_m.resize(n);
    }

    [[nodiscard]] std::size_t memory_bytes() const {
      return rx_x.capacity() * sizeof(double) +
             rx_y.capacity() * sizeof(double) +
             rx_id.capacity() * sizeof(std::uint32_t) +
             rx_index.capacity() * sizeof(std::uint32_t) +
             distance_m.capacity() * sizeof(double) +
             power_dbm.capacity() * sizeof(double);
    }
  };

  // Pass 1 only: fill batch.distance_m for every element.
  static void compute_distances(Batch& batch, mobility::Vec2 tx_pos,
                                Mode mode = Mode::kAuto);

  // Pass 1 + pass 2: distances, then model powers into batch.power_dbm.
  static void evaluate(const PropagationModel& model, double tx_power_dbm,
                       mobility::Vec2 tx_pos, std::uint32_t tx_id,
                       Batch& batch, Mode mode = Mode::kAuto);

  // Pass 2 only, for batches whose distances are already valid (the
  // channel's full-scan path computes distances, culls, then evaluates
  // the surviving sub-batch).
  static void evaluate_with_distances(const PropagationModel& model,
                                      double tx_power_dbm,
                                      mobility::Vec2 tx_pos,
                                      std::uint32_t tx_id, Batch& batch);

  // True when the explicit SIMD path is compiled in AND this CPU
  // supports it. kAuto degrades to scalar when false.
  [[nodiscard]] static bool simd_available();
};

}  // namespace wmn::phy
