#include "phy/link_budget_kernel.hpp"

#include "core/check.hpp"

namespace wmn::phy {

namespace detail {

// Scalar reference distance pass. The loop body is exactly
// link_distance_m(); kept branch-free so GCC's -O2 vectoriser can
// turn it into sqrtpd/maxpd without changing the IEEE semantics
// (no -ffast-math anywhere in this tree).
void compute_distances_scalar(const double* rx_x, const double* rx_y,
                              double* out, std::size_t n,
                              mobility::Vec2 tx_pos) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = link_distance_m(tx_pos, mobility::Vec2{rx_x[i], rx_y[i]});
  }
}

#if defined(WMN_SIMD_AVX2)
// Defined in link_budget_kernel_avx2.cpp (compiled with -mavx2).
void compute_distances_avx2(const double* rx_x, const double* rx_y,
                            double* out, std::size_t n, mobility::Vec2 tx_pos);
#endif

}  // namespace detail

bool LinkBudgetKernel::simd_available() {
#if defined(WMN_SIMD_AVX2)
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

void LinkBudgetKernel::compute_distances(Batch& batch, mobility::Vec2 tx_pos,
                                         Mode mode) {
  const std::size_t n = batch.size();
  batch.distance_m.resize(n);
  if (n == 0) return;
#if defined(WMN_SIMD_AVX2)
  if (mode == Mode::kAuto && simd_available()) {
    detail::compute_distances_avx2(batch.rx_x.data(), batch.rx_y.data(),
                                   batch.distance_m.data(), n, tx_pos);
    return;
  }
#else
  (void)mode;
#endif
  detail::compute_distances_scalar(batch.rx_x.data(), batch.rx_y.data(),
                                   batch.distance_m.data(), n, tx_pos);
}

void LinkBudgetKernel::evaluate_with_distances(const PropagationModel& model,
                                               double tx_power_dbm,
                                               mobility::Vec2 tx_pos,
                                               std::uint32_t tx_id,
                                               Batch& batch) {
  const std::size_t n = batch.size();
  WMN_CHECK_EQ(batch.distance_m.size(), n,
               "batch distances not computed before model evaluation");
  batch.power_dbm.resize(n);
  if (n == 0) return;
  LinkBatchView view;
  view.tx_power_dbm = tx_power_dbm;
  view.tx_pos = tx_pos;
  view.tx_id = tx_id;
  view.n = n;
  view.rx_x = batch.rx_x.data();
  view.rx_y = batch.rx_y.data();
  view.rx_id = batch.rx_id.data();
  view.distance_m = batch.distance_m.data();
  view.out_power_dbm = batch.power_dbm.data();
  model.rx_power_dbm_batch(view);
}

void LinkBudgetKernel::evaluate(const PropagationModel& model,
                                double tx_power_dbm, mobility::Vec2 tx_pos,
                                std::uint32_t tx_id, Batch& batch, Mode mode) {
  compute_distances(batch, tx_pos, mode);
  evaluate_with_distances(model, tx_power_dbm, tx_pos, tx_id, batch);
}

}  // namespace wmn::phy
