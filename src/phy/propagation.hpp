// Radio propagation (path-loss) models.
//
// A model maps (tx power, positions, link identity) to received power
// in dBm. Link identity (the unordered node-id pair) lets the shadowing
// wrapper draw a per-link offset that is deterministic for a given
// master seed and symmetric (reciprocal links fade identically), which
// keeps runs reproducible and unicast/ACK behaviour consistent.
//
// Besides the scalar per-pair query, every model evaluates whole
// batches of links against one transmitter (rx_power_dbm_batch). The
// batch contract is strict: for every element the batch output must be
// bit-identical to the scalar rx_power_dbm call — the channel mixes
// memoised (batch-computed) and per-transmission (also batch-computed)
// budgets freely and the determinism fingerprint would expose any ulp
// of divergence. The built-in models share one per-distance core
// between the scalar and batch paths so the identity holds by
// construction; the base-class default simply loops the scalar virtual,
// so third-party models inherit correctness (not speed) for free.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>

#include "mobility/vec2.hpp"

namespace wmn::phy {

// SoA view of one transmitter against a batch of candidate receivers.
// All arrays hold `n` elements and are caller-owned (see
// LinkBudgetKernel, which owns reusable buffers and fills
// `distance_m` before handing the view to the model).
struct LinkBatchView {
  double tx_power_dbm = 0.0;
  mobility::Vec2 tx_pos{};
  std::uint32_t tx_id = 0;
  std::size_t n = 0;
  const double* rx_x = nullptr;       // receiver positions
  const double* rx_y = nullptr;
  const std::uint32_t* rx_id = nullptr;  // receiver node ids (shadowing)
  const double* distance_m = nullptr;    // precomputed link_distance_m()
  double* out_power_dbm = nullptr;       // filled by the model
};

// The one distance function every propagation path uses: straight-line
// Euclidean distance floored to a few centimetres so co-located nodes
// cannot produce infinite receive power. sqrt(dx^2 + dy^2) rather than
// std::hypot: sqrt is a correctly-rounded single instruction, so the
// scalar loop, the auto-vectorised loop, and the explicit SIMD path
// all produce the same bits (hypot is only near-correctly rounded and
// is not vectorisable). Mesh coordinates are O(km), far from the
// overflow regime hypot exists to handle.
[[nodiscard]] inline double link_distance_m(mobility::Vec2 a,
                                            mobility::Vec2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double d = std::sqrt(dx * dx + dy * dy);
  return d < 0.05 ? 0.05 : d;
}

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  [[nodiscard]] virtual double rx_power_dbm(double tx_power_dbm,
                                            mobility::Vec2 tx_pos,
                                            mobility::Vec2 rx_pos,
                                            std::uint32_t tx_id,
                                            std::uint32_t rx_id) const = 0;

  // Batch form: fill batch.out_power_dbm[i] for every element, bit-
  // identical to the scalar call on the same pair. The default loops
  // the scalar virtual (correct for any derived model); the built-in
  // models override with straight-line loops over batch.distance_m.
  virtual void rx_power_dbm_batch(const LinkBatchView& batch) const;

  // Inverse of the path-loss curve: a distance R such that for EVERY
  // pair of positions farther apart than R and every link identity,
  // rx_power_dbm(tx_power_dbm, ...) < floor_dbm. The bound must be
  // conservative (it may overestimate the true range) but never tight
  // the wrong way — the spatial index culls receivers beyond R without
  // evaluating the model, and a false cull would change delivered sets.
  // Models that cannot bound themselves return +infinity, which makes
  // the index fall back to the full receiver scan transparently.
  [[nodiscard]] virtual double max_range_m(double tx_power_dbm,
                                           double floor_dbm) const {
    (void)tx_power_dbm;
    (void)floor_dbm;
    return std::numeric_limits<double>::infinity();
  }
};

// Free-space (Friis) model: PL(d) = 20 log10(4 pi d f / c).
class FriisModel final : public PropagationModel {
 public:
  explicit FriisModel(double frequency_hz = 2.4e9, double system_loss_db = 0.0);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

  void rx_power_dbm_batch(const LinkBatchView& batch) const override;

  [[nodiscard]] double max_range_m(double tx_power_dbm,
                                   double floor_dbm) const override;

  // Shared scalar core: received power at a (floored) distance. Public
  // because TwoRayGroundModel reuses it below its crossover distance.
  [[nodiscard]] double power_at(double tx_power_dbm, double d) const;

 private:
  double frequency_hz_;
  double system_loss_db_;
};

// Log-distance model: PL(d) = PL(d0) + 10 n log10(d / d0).
// The workhorse model for urban mesh deployments; defaults are
// calibrated so that with 15 dBm TX and -85 dBm sensitivity the
// communication range is ~250 m and the detection range ~480 m — the
// classic ns-2 two-range setup WMN papers assume.
class LogDistanceModel final : public PropagationModel {
 public:
  explicit LogDistanceModel(double exponent = 2.5, double reference_distance_m = 1.0,
                            double reference_loss_db = 40.0);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

  void rx_power_dbm_batch(const LinkBatchView& batch) const override;

  [[nodiscard]] double max_range_m(double tx_power_dbm,
                                   double floor_dbm) const override;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  [[nodiscard]] double power_at(double tx_power_dbm, double d) const;

  double exponent_;
  double reference_distance_m_;
  double reference_loss_db_;
};

// Two-ray ground-reflection model with Friis crossover below the
// critical distance dc = 4 pi ht hr / lambda.
class TwoRayGroundModel final : public PropagationModel {
 public:
  TwoRayGroundModel(double frequency_hz = 2.4e9, double antenna_height_m = 1.5);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

  void rx_power_dbm_batch(const LinkBatchView& batch) const override;

  // Max of the two regimes' inversions: beyond both, whichever piece
  // applies at a given distance is below the floor.
  [[nodiscard]] double max_range_m(double tx_power_dbm,
                                   double floor_dbm) const override;

 private:
  [[nodiscard]] double power_at(double tx_power_dbm, double d) const;

  FriisModel friis_;
  double frequency_hz_;
  double antenna_height_m_;
};

// Decorator adding static log-normal shadowing: a per-link Gaussian
// offset with the given sigma, derived by hashing the unordered link
// pair with the seed (deterministic, reciprocal, reproducible).
class LogNormalShadowing final : public PropagationModel {
 public:
  LogNormalShadowing(std::unique_ptr<PropagationModel> inner, double sigma_db,
                     std::uint64_t seed);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t tx_id,
                                    std::uint32_t rx_id) const override;

  // Batches the inner model, then adds the per-link offset element-
  // wise. The offset is a pure function of (seed, link id pair) — no
  // draw order, no shared stream — which is exactly what makes the
  // shadowed budget batchable without breaking fingerprints.
  void rx_power_dbm_batch(const LinkBatchView& batch) const override;

  // Inner range at a floor lowered by kSigmaBound * sigma. The offset
  // is one Marsaglia-polar normal draw from RngStream: |z| is provably
  // < sqrt(-2 ln s_min) with s_min = 2^-104 (u, v are multiples of
  // 2^-52 and s = 0 is rejected), i.e. |z| < 12.01 — so a 12.5-sigma
  // pad makes the cull exact, not merely probable. The pad is large in
  // distance terms (sigma 6 dB inflates a log-distance range ~1000x),
  // so shadowed runs mostly degrade to the full scan — correct first,
  // fast where provable.
  static constexpr double kSigmaBound = 12.5;

  [[nodiscard]] double max_range_m(double tx_power_dbm,
                                   double floor_dbm) const override;

 private:
  [[nodiscard]] double link_offset_db(std::uint32_t a, std::uint32_t b) const;

  std::unique_ptr<PropagationModel> inner_;
  double sigma_db_;
  std::uint64_t seed_;
};

}  // namespace wmn::phy
