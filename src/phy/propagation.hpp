// Radio propagation (path-loss) models.
//
// A model maps (tx power, positions, link identity) to received power
// in dBm. Link identity (the unordered node-id pair) lets the shadowing
// wrapper draw a per-link offset that is deterministic for a given
// master seed and symmetric (reciprocal links fade identically), which
// keeps runs reproducible and unicast/ACK behaviour consistent.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "mobility/vec2.hpp"

namespace wmn::phy {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  [[nodiscard]] virtual double rx_power_dbm(double tx_power_dbm,
                                            mobility::Vec2 tx_pos,
                                            mobility::Vec2 rx_pos,
                                            std::uint32_t tx_id,
                                            std::uint32_t rx_id) const = 0;

  // Inverse of the path-loss curve: a distance R such that for EVERY
  // pair of positions farther apart than R and every link identity,
  // rx_power_dbm(tx_power_dbm, ...) < floor_dbm. The bound must be
  // conservative (it may overestimate the true range) but never tight
  // the wrong way — the spatial index culls receivers beyond R without
  // evaluating the model, and a false cull would change delivered sets.
  // Models that cannot bound themselves return +infinity, which makes
  // the index fall back to the full receiver scan transparently.
  [[nodiscard]] virtual double max_range_m(double tx_power_dbm,
                                           double floor_dbm) const {
    (void)tx_power_dbm;
    (void)floor_dbm;
    return std::numeric_limits<double>::infinity();
  }
};

// Free-space (Friis) model: PL(d) = 20 log10(4 pi d f / c).
class FriisModel final : public PropagationModel {
 public:
  explicit FriisModel(double frequency_hz = 2.4e9, double system_loss_db = 0.0);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

  [[nodiscard]] double max_range_m(double tx_power_dbm,
                                   double floor_dbm) const override;

 private:
  double frequency_hz_;
  double system_loss_db_;
};

// Log-distance model: PL(d) = PL(d0) + 10 n log10(d / d0).
// The workhorse model for urban mesh deployments; defaults are
// calibrated so that with 15 dBm TX and -85 dBm sensitivity the
// communication range is ~250 m and the detection range ~480 m — the
// classic ns-2 two-range setup WMN papers assume.
class LogDistanceModel final : public PropagationModel {
 public:
  explicit LogDistanceModel(double exponent = 2.5, double reference_distance_m = 1.0,
                            double reference_loss_db = 40.0);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

  [[nodiscard]] double max_range_m(double tx_power_dbm,
                                   double floor_dbm) const override;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  double reference_distance_m_;
  double reference_loss_db_;
};

// Two-ray ground-reflection model with Friis crossover below the
// critical distance dc = 4 pi ht hr / lambda.
class TwoRayGroundModel final : public PropagationModel {
 public:
  TwoRayGroundModel(double frequency_hz = 2.4e9, double antenna_height_m = 1.5);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

  // Max of the two regimes' inversions: beyond both, whichever piece
  // applies at a given distance is below the floor.
  [[nodiscard]] double max_range_m(double tx_power_dbm,
                                   double floor_dbm) const override;

 private:
  FriisModel friis_;
  double frequency_hz_;
  double antenna_height_m_;
};

// Decorator adding static log-normal shadowing: a per-link Gaussian
// offset with the given sigma, derived by hashing the unordered link
// pair with the seed (deterministic, reciprocal, reproducible).
class LogNormalShadowing final : public PropagationModel {
 public:
  LogNormalShadowing(std::unique_ptr<PropagationModel> inner, double sigma_db,
                     std::uint64_t seed);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t tx_id,
                                    std::uint32_t rx_id) const override;

  // Inner range at a floor lowered by kSigmaBound * sigma. The offset
  // is one Marsaglia-polar normal draw from RngStream: |z| is provably
  // < sqrt(-2 ln s_min) with s_min = 2^-104 (u, v are multiples of
  // 2^-52 and s = 0 is rejected), i.e. |z| < 12.01 — so a 12.5-sigma
  // pad makes the cull exact, not merely probable. The pad is large in
  // distance terms (sigma 6 dB inflates a log-distance range ~1000x),
  // so shadowed runs mostly degrade to the full scan — correct first,
  // fast where provable.
  static constexpr double kSigmaBound = 12.5;

  [[nodiscard]] double max_range_m(double tx_power_dbm,
                                   double floor_dbm) const override;

 private:
  [[nodiscard]] double link_offset_db(std::uint32_t a, std::uint32_t b) const;

  std::unique_ptr<PropagationModel> inner_;
  double sigma_db_;
  std::uint64_t seed_;
};

}  // namespace wmn::phy
