// Radio propagation (path-loss) models.
//
// A model maps (tx power, positions, link identity) to received power
// in dBm. Link identity (the unordered node-id pair) lets the shadowing
// wrapper draw a per-link offset that is deterministic for a given
// master seed and symmetric (reciprocal links fade identically), which
// keeps runs reproducible and unicast/ACK behaviour consistent.
#pragma once

#include <cstdint>
#include <memory>

#include "mobility/vec2.hpp"

namespace wmn::phy {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  [[nodiscard]] virtual double rx_power_dbm(double tx_power_dbm,
                                            mobility::Vec2 tx_pos,
                                            mobility::Vec2 rx_pos,
                                            std::uint32_t tx_id,
                                            std::uint32_t rx_id) const = 0;
};

// Free-space (Friis) model: PL(d) = 20 log10(4 pi d f / c).
class FriisModel final : public PropagationModel {
 public:
  explicit FriisModel(double frequency_hz = 2.4e9, double system_loss_db = 0.0);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

 private:
  double frequency_hz_;
  double system_loss_db_;
};

// Log-distance model: PL(d) = PL(d0) + 10 n log10(d / d0).
// The workhorse model for urban mesh deployments; defaults are
// calibrated so that with 15 dBm TX and -85 dBm sensitivity the
// communication range is ~250 m and the detection range ~480 m — the
// classic ns-2 two-range setup WMN papers assume.
class LogDistanceModel final : public PropagationModel {
 public:
  explicit LogDistanceModel(double exponent = 2.5, double reference_distance_m = 1.0,
                            double reference_loss_db = 40.0);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  double reference_distance_m_;
  double reference_loss_db_;
};

// Two-ray ground-reflection model with Friis crossover below the
// critical distance dc = 4 pi ht hr / lambda.
class TwoRayGroundModel final : public PropagationModel {
 public:
  TwoRayGroundModel(double frequency_hz = 2.4e9, double antenna_height_m = 1.5);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t,
                                    std::uint32_t) const override;

 private:
  FriisModel friis_;
  double frequency_hz_;
  double antenna_height_m_;
};

// Decorator adding static log-normal shadowing: a per-link Gaussian
// offset with the given sigma, derived by hashing the unordered link
// pair with the seed (deterministic, reciprocal, reproducible).
class LogNormalShadowing final : public PropagationModel {
 public:
  LogNormalShadowing(std::unique_ptr<PropagationModel> inner, double sigma_db,
                     std::uint64_t seed);

  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                    mobility::Vec2 rx_pos, std::uint32_t tx_id,
                                    std::uint32_t rx_id) const override;

 private:
  [[nodiscard]] double link_offset_db(std::uint32_t a, std::uint32_t b) const;

  std::unique_ptr<PropagationModel> inner_;
  double sigma_db_;
  std::uint64_t seed_;
};

}  // namespace wmn::phy
