// ShardRouter: deterministic cross-region delivery inboxes for the
// sharded engine (sim/sharded_simulator.hpp).
//
// During an epoch, each region's channel classifies every delivery by
// the receiver's home region. Intra-region copies take the normal slot
// pool; cross-region copies are posted here, into the (src-region,
// dst-region) outbox row, stamped with a per-row monotone sequence
// number. Rows are strictly single-writer (only src's worker posts to
// row (src, *)), so posting needs no synchronisation.
//
// At each epoch barrier merge_epoch() runs on the coordinating thread
// with every worker parked. Per destination region it collects all
// pending entries, computes each entry's release time
//     release = max(physical arrival, barrier)
// (conservative lookahead guarantees arrival lands in the *next* epoch
// or later for a true causality edge; an arrival inside the just-
// finished epoch is clamped to the barrier — never early, late by less
// than one epoch), sorts them by the fixed total order
//     (release, src region, row sequence)
// and schedules each into the destination region's calendar in that
// order. The destination calendar's own insertion sequence then makes
// same-release ties deterministic forever after. Packets are deep-
// cloned into the destination region's arena (arenas are single-
// threaded by contract); the source-side references die on the
// coordinating thread during the merge, which the barrier orders
// against all worker access.
#pragma once

#include <cstdint>
#include <vector>

#include "core/check.hpp"
#include "net/packet.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/time.hpp"

namespace wmn::phy {

class WifiPhy;
class WirelessChannel;

class ShardRouter final : public sim::ShardBarrierHook {
 public:
  // `region_of_node[i]` is node i's home region; `channels[r]` and
  // `factories[r]` are region r's channel and packet factory. All
  // non-owning; the scenario wires lifetimes.
  ShardRouter(std::vector<std::uint32_t> region_of_node,
              std::vector<WirelessChannel*> channels,
              std::vector<net::PacketFactory*> factories);

  [[nodiscard]] std::uint32_t region_count() const {
    return static_cast<std::uint32_t>(channels_.size());
  }
  [[nodiscard]] std::uint32_t region_of(std::uint32_t node_id) const {
    WMN_CHECK_LT(node_id, region_of_node_.size(), "unmapped node id");
    return region_of_node_[node_id];
  }

  // Post a cross-region delivery (called on src's worker during an
  // epoch). `arrival` is the physical arrival instant (now +
  // propagation delay); `rx` lives in `dst_region`.
  void post(std::uint32_t src_region, std::uint32_t dst_region, WifiPhy* rx,
            const net::Packet& packet, double rx_power_dbm, double rx_power_mw,
            sim::Time arrival, sim::Time duration);

  // ShardBarrierHook.
  bool merge_epoch(sim::Time boundary) override;

  // Diagnostics (coordinator thread only).
  [[nodiscard]] std::uint64_t posted() const;
  [[nodiscard]] std::uint64_t merged() const { return merged_; }

  // Test hook: when enabled, each merge records (release, src region,
  // row seq, source packet uid) in schedule order — the fixed total
  // order tests/test_shard_map.cpp pins. Off by default (zero cost).
  struct MergeTraceEntry {
    sim::Time release{};
    std::uint32_t src_region = 0;
    std::uint64_t seq = 0;
    std::uint64_t uid = 0;
  };
  void set_trace(bool on) { trace_on_ = on; }
  [[nodiscard]] const std::vector<MergeTraceEntry>& last_merge_trace() const {
    return trace_;
  }

 private:
  struct Entry {
    net::Packet packet;  // source-arena reference until the merge clones it
    WifiPhy* rx;
    double rx_power_dbm;
    double rx_power_mw;
    sim::Time arrival;
    sim::Time duration;
    std::uint64_t seq;  // per-(src,dst) row, monotone
  };
  struct Outbox {
    std::vector<Entry> entries;
    std::uint64_t next_seq = 0;
  };
  // Sort key + locator used by the merge; kept out of Entry so the
  // sort moves 24 bytes, not packets.
  struct MergeRef {
    sim::Time release;
    std::uint32_t src_region;
    std::uint64_t seq;
    std::uint32_t index;  // into that row's entries
  };

  std::vector<std::uint32_t> region_of_node_;
  std::vector<WirelessChannel*> channels_;
  std::vector<net::PacketFactory*> factories_;
  std::vector<Outbox> outboxes_;  // row-major: src * R + dst
  std::vector<MergeRef> scratch_;
  std::uint64_t merged_ = 0;
  bool trace_on_ = false;
  std::vector<MergeTraceEntry> trace_;
};

}  // namespace wmn::phy
