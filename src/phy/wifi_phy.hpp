// Half-duplex radio with SINR-based reception.
//
// State machine: IDLE -> TX (MAC asked to send), IDLE -> RX (locked
// onto the first arrival strong enough to decode), arrivals during TX
// or RX are interference. CCA reports busy whenever the radio is not
// IDLE or the summed arrival energy exceeds the CCA threshold, which is
// how carrier sensing extends beyond decode range (the hidden/exposed
// terminal geometry the MAC must live with).
//
// Reception outcome: a locked frame is decoded successfully iff the
// SINR — locked power over (noise floor + the *maximum* concurrent
// interference seen during the frame) — clears the capture threshold.
// The max-interference rule is the standard conservative approximation
// (a frame clobbered for any part of its duration is lost).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "net/packet.hpp"
#include "phy/units.hpp"
#include "sim/simulator.hpp"

namespace wmn::phy {

class WirelessChannel;

struct PhyConfig {
  double tx_power_dbm = 15.0;
  double bit_rate_bps = 2e6;           // 802.11 (1999) 2 Mb/s DSSS regime
  sim::Time preamble = sim::Time::micros(192.0);
  double noise_floor_dbm = -96.0;      // thermal + NF over ~22 MHz
  double rx_sensitivity_dbm = -85.0;   // min power to lock/decode
  double cca_threshold_dbm = -92.0;    // energy-detect busy threshold
  double detection_floor_dbm = -98.0;  // below this the channel drops the copy
  double sinr_threshold_db = 10.0;     // capture/decode threshold

  // Radio power draw for the energy model (typical 802.11b card).
  double power_tx_w = 1.4;
  double power_rx_w = 0.9;    // actively decoding a locked frame
  double power_idle_w = 0.8;  // listening (idle or CCA-busy unlocked)
};

// Upper-layer (MAC) callbacks. All are invoked from the event loop.
class PhyListener {
 public:
  virtual ~PhyListener() = default;

  // A decodable frame started arriving (the radio locked onto it).
  virtual void on_rx_start() = 0;

  // Frame reception finished. `packet` is empty on decode failure
  // (SINR below threshold). `rx_power_dbm` is the locked frame power.
  virtual void on_rx_end(std::optional<net::Packet> packet,
                         double rx_power_dbm) = 0;

  // Our own transmission completed; the radio is free again.
  virtual void on_tx_end() = 0;

  // Carrier-sense state changed (true = busy).
  virtual void on_cca_change(bool busy) = 0;
};

class WifiPhy {
 public:
  enum class State { kIdle, kTx, kRx };

  WifiPhy(sim::Simulator& simulator, const PhyConfig& cfg, std::uint32_t node_id,
          const mobility::MobilityModel* mobility);

  WifiPhy(const WifiPhy&) = delete;
  WifiPhy& operator=(const WifiPhy&) = delete;

  void attach(WirelessChannel* channel) { channel_ = channel; }
  void set_listener(PhyListener* listener) { listener_ = listener; }

  // --- MAC-facing API --------------------------------------------------
  // Transmit a frame. Precondition: can_transmit(). The MAC is notified
  // via on_tx_end() when the air time elapses.
  void send(net::Packet packet);

  [[nodiscard]] bool can_transmit() const { return state_ == State::kIdle; }

  // Full frame air time for a given size at the configured rate.
  [[nodiscard]] sim::Time tx_duration(std::uint32_t bytes) const;

  // Carrier-sense: busy if transmitting, receiving, or summed arrival
  // energy above the CCA threshold.
  [[nodiscard]] bool cca_busy() const;

  [[nodiscard]] State state() const { return state_; }

  // --- fault-injection API ---------------------------------------------
  // Power the radio down/up (fault::Injector). A down radio drops every
  // arrival, reports CCA idle, and must not be asked to send(). Going
  // down releases a reception lock silently (no on_rx_end); an in-flight
  // own transmission still runs to its scheduled end — the MAC is
  // powered down first and ignores the on_tx_end. Down time draws no
  // energy. No-op when already in the requested state.
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  // --- channel-facing API ----------------------------------------------
  // An energy arrival begins at this radio (called by the channel after
  // propagation delay). `rx_power_dbm` is already path-loss adjusted;
  // `rx_power_mw` is the same power in linear units — the channel
  // memoises the dBm->mW conversion per cached link, so the radio's
  // hot path never calls pow().
  void begin_arrival(net::Packet packet, double rx_power_dbm,
                     double rx_power_mw, sim::Time duration);

  [[nodiscard]] mobility::Vec2 position(sim::Time now) const {
    return mobility_->position(now);
  }
  [[nodiscard]] const mobility::MobilityModel* mobility() const {
    return mobility_;
  }
  // Dense position in the channel's radio list, assigned by
  // WirelessChannel::attach(); keys the channel's spatial index and
  // neighbour caches (node_id is user-chosen and need not be dense).
  void set_channel_index(std::uint32_t i) { channel_index_ = i; }
  [[nodiscard]] std::uint32_t channel_index() const { return channel_index_; }
  [[nodiscard]] std::uint32_t node_id() const { return node_id_; }
  [[nodiscard]] const PhyConfig& config() const { return cfg_; }

  // Total time this radio has seen the medium busy (including its own
  // transmissions), up to the current instant. Monotone; the
  // LoadMonitor differences it over windows.
  [[nodiscard]] sim::Time cumulative_busy_time() const {
    sim::Time t = counters_.busy_time;
    if (last_cca_busy_) t += sim_.now() - busy_since_;
    return t;
  }

  // --- diagnostics ------------------------------------------------------
  struct Counters {
    std::uint64_t tx_frames = 0;
    std::uint64_t rx_ok = 0;
    std::uint64_t rx_failed_sinr = 0;   // locked but clobbered
    std::uint64_t rx_missed_busy = 0;   // arrival while TX/RX-locked
    std::uint64_t rx_below_sensitivity = 0;
    std::uint64_t rx_dropped_down = 0;  // arrival while powered down
    sim::Time tx_airtime{};
    sim::Time rx_airtime{};             // time spent RX-locked
    sim::Time busy_time{};              // cumulative CCA-busy time
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Dynamic footprint of this radio's state (arrival list) — feeds the
  // bytes_per_node bench counter.
  [[nodiscard]] std::size_t memory_bytes() const {
    return sizeof(*this) + arrivals_.capacity() * sizeof(Arrival);
  }

  // Energy consumed since t=0 under the configured power draws:
  // TX at power_tx_w, RX-locked at power_rx_w, everything else
  // (listening, idle, carrier-sensing) at power_idle_w. Powered-down
  // intervals draw nothing.
  [[nodiscard]] double energy_joules() const {
    const double total_s = sim_.now().to_seconds();
    const double tx_s = counters_.tx_airtime.to_seconds();
    double rx_s = counters_.rx_airtime.to_seconds();
    if (locked_) rx_s += (sim_.now() - locked_since_).to_seconds();
    double down_s = down_time_.to_seconds();
    if (!up_) down_s += (sim_.now() - down_since_).to_seconds();
    const double idle_s = total_s - tx_s - rx_s - down_s;
    return cfg_.power_tx_w * tx_s + cfg_.power_rx_w * rx_s +
           cfg_.power_idle_w * (idle_s > 0.0 ? idle_s : 0.0);
  }

 private:
  struct Arrival {
    std::uint64_t key;
    net::Packet packet;
    double power_mw;
    sim::Time end;
  };

  void end_arrival(std::uint64_t key);
  void finish_tx();
  // Sum of arrival power excluding the given key (linear mW).
  [[nodiscard]] double interference_mw(std::uint64_t except_key) const;
  void refresh_cca();

  sim::Simulator& sim_;
  PhyConfig cfg_;
  // Hot-path constants derived from cfg_ once at construction: the
  // linear-domain thresholds let arrival/CCA/decode logic run without
  // pow()/log10() per event.
  double noise_floor_mw_;
  double cca_threshold_mw_;
  double sinr_threshold_lin_;
  std::uint32_t node_id_;
  std::uint32_t channel_index_ = 0;
  const mobility::MobilityModel* mobility_;
  WirelessChannel* channel_ = nullptr;
  PhyListener* listener_ = nullptr;

  State state_ = State::kIdle;
  std::vector<Arrival> arrivals_;
  std::uint64_t next_arrival_key_ = 0;

  // Reception lock.
  bool locked_ = false;
  std::uint64_t locked_key_ = 0;
  sim::Time locked_since_{};
  double locked_power_mw_ = 0.0;
  double locked_power_dbm_ = 0.0;  // as delivered; avoids log10 at decode
  double locked_max_interference_mw_ = 0.0;

  bool last_cca_busy_ = false;
  sim::Time busy_since_{};

  // Fault-injection power state.
  bool up_ = true;
  sim::Time down_since_{};
  sim::Time down_time_{};  // closed down intervals only

  Counters counters_;
};

}  // namespace wmn::phy
