#include "phy/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace wmn::phy {

namespace {

// Minimum separation between two axis-aligned boxes along one axis;
// zero when the intervals overlap.
double axis_gap(double lo_a, double hi_a, double lo_b, double hi_b) {
  if (hi_a < lo_b) return lo_b - hi_a;
  if (hi_b < lo_a) return lo_a - hi_b;
  return 0.0;
}

// Lower bound on the distance between any point of `a` and any point
// of `b` — the provable cull test for a whole movement epoch.
double min_box_distance(const mobility::TrajectoryBounds& a,
                        const mobility::TrajectoryBounds& b) {
  const double gx = axis_gap(a.lo.x, a.hi.x, b.lo.x, b.hi.x);
  const double gy = axis_gap(a.lo.y, a.hi.y, b.lo.y, b.hi.y);
  return std::hypot(gx, gy);
}

}  // namespace

double SpatialIndex::cell_size_for(double max_finite_range_m, double area_width_m,
                                   double area_height_m) {
  const double area_max = std::max(area_width_m, area_height_m);
  double cell = max_finite_range_m > 0.0 ? max_finite_range_m / 2.0 : area_max;
  // Keep the grid between "one cell" and "256 per axis" so neither a
  // huge range nor a huge area degenerates it.
  cell = std::clamp(cell, area_max / 256.0, area_max);
  return std::max(cell, 1.0);
}

SpatialIndex::Grid SpatialIndex::grid_for(double area_width_m, double area_height_m,
                                          double cell_size_m) {
  Grid g;
  g.cell_m = cell_size_m;
  g.nx = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(area_width_m / cell_size_m)));
  g.ny = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(area_height_m / cell_size_m)));
  return g;
}

SpatialIndex::SpatialIndex(double area_width_m, double area_height_m,
                           double cell_size_m)
    : cell_size_m_(cell_size_m) {
  WMN_CHECK(area_width_m > 0.0 && area_height_m > 0.0 && cell_size_m > 0.0,
            "spatial index needs a positive area and cell size");
  const Grid g = grid_for(area_width_m, area_height_m, cell_size_m);
  nx_ = g.nx;
  ny_ = g.ny;
  cells_.resize(static_cast<std::size_t>(nx_) * ny_);
}

SpatialIndex::~SpatialIndex() {
  // Detach from models that may outlive the index (test fixtures own
  // them separately); a bump after our death must not touch us.
  for (const Node& n : nodes_) {
    if (n.model != nullptr) n.model->set_motion_listener(nullptr, 0);
  }
}

std::uint32_t SpatialIndex::cell_x(double x) const {
  const double c = std::floor(x / cell_size_m_);
  if (!(c > 0.0)) return 0;  // also catches NaN
  return std::min(static_cast<std::uint32_t>(c), nx_ - 1);
}

std::uint32_t SpatialIndex::cell_y(double y) const {
  const double c = std::floor(y / cell_size_m_);
  if (!(c > 0.0)) return 0;
  return std::min(static_cast<std::uint32_t>(c), ny_ - 1);
}

void SpatialIndex::add_node(const mobility::MobilityModel* model) {
  WMN_CHECK_NOTNULL(model, "add_node(nullptr)");
  const auto i = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[i].model = model;
  stamp_.push_back(0);
  model->set_motion_listener(this, i);
  bin(i);
  ++version_;
}

void SpatialIndex::on_motion_epoch(std::uint32_t token) {
  Node& n = nodes_[token];
  if (n.dirty) return;
  n.dirty = true;
  dirty_.push_back(token);
}

void SpatialIndex::refresh() {
  if (dirty_.empty()) return;
  for (const std::uint32_t i : dirty_) {
    unbin(i);
    bin(i);
    nodes_[i].dirty = false;
  }
  dirty_.clear();
  ++version_;
}

void SpatialIndex::bin(std::uint32_t i) {
  Node& n = nodes_[i];
  n.bounds = n.model->trajectory_bounds();
  if (!n.bounds.is_bounded()) {
    n.roamer = true;
    roamers_.insert(
        std::lower_bound(roamers_.begin(), roamers_.end(), i), i);
    return;
  }
  const std::uint32_t cx0 = cell_x(n.bounds.lo.x);
  const std::uint32_t cx1 = cell_x(n.bounds.hi.x);
  const std::uint32_t cy0 = cell_y(n.bounds.lo.y);
  const std::uint32_t cy1 = cell_y(n.bounds.hi.y);
  const std::uint64_t span = static_cast<std::uint64_t>(cx1 - cx0 + 1) *
                             static_cast<std::uint64_t>(cy1 - cy0 + 1);
  if (span > kRoamerCellLimit) {
    // A leg crossing much of the area: cheaper as an always-candidate
    // than splatted over dozens of cells. Bounds stay valid for the
    // per-pair distance test.
    n.roamer = true;
    roamers_.insert(
        std::lower_bound(roamers_.begin(), roamers_.end(), i), i);
    return;
  }
  n.roamer = false;
  n.cx0 = cx0;
  n.cx1 = cx1;
  n.cy0 = cy0;
  n.cy1 = cy1;
  for (std::uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (std::uint32_t cx = cx0; cx <= cx1; ++cx) {
      cells_[static_cast<std::size_t>(cy) * nx_ + cx].push_back(i);
    }
  }
}

void SpatialIndex::unbin(std::uint32_t i) {
  Node& n = nodes_[i];
  if (n.roamer) {
    const auto it = std::lower_bound(roamers_.begin(), roamers_.end(), i);
    if (it != roamers_.end() && *it == i) roamers_.erase(it);
    return;
  }
  for (std::uint32_t cy = n.cy0; cy <= n.cy1; ++cy) {
    for (std::uint32_t cx = n.cx0; cx <= n.cx1; ++cx) {
      auto& cell = cells_[static_cast<std::size_t>(cy) * nx_ + cx];
      const auto it = std::find(cell.begin(), cell.end(), i);
      if (it != cell.end()) cell.erase(it);
    }
  }
}

void SpatialIndex::gather(std::uint32_t src, double range_m,
                          std::vector<std::uint32_t>& out) {
  out.clear();
  const Node& s = nodes_[src];
  const bool cullable = std::isfinite(range_m) && !s.roamer;
  if (!cullable) {
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      if (i != src) out.push_back(i);
    }
    return;
  }

  if (++query_id_ == 0) {  // stamp wraparound: reset and restart
    std::fill(stamp_.begin(), stamp_.end(), 0);
    query_id_ = 1;
  }

  const std::uint32_t cx0 = cell_x(s.bounds.lo.x - range_m);
  const std::uint32_t cx1 = cell_x(s.bounds.hi.x + range_m);
  const std::uint32_t cy0 = cell_y(s.bounds.lo.y - range_m);
  const std::uint32_t cy1 = cell_y(s.bounds.hi.y + range_m);
  for (std::uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (std::uint32_t cx = cx0; cx <= cx1; ++cx) {
      for (const std::uint32_t i :
           cells_[static_cast<std::size_t>(cy) * nx_ + cx]) {
        if (i == src || stamp_[i] == query_id_) continue;
        stamp_[i] = query_id_;
        // Exact epoch-level test: skip only when the two bounds are
        // provably farther apart than the range for the whole epoch.
        if (min_box_distance(s.bounds, nodes_[i].bounds) > range_m) continue;
        out.push_back(i);
      }
    }
  }
  for (const std::uint32_t i : roamers_) {
    if (i == src || stamp_[i] == query_id_) continue;
    stamp_[i] = query_id_;
    if (min_box_distance(s.bounds, nodes_[i].bounds) > range_m) continue;
    out.push_back(i);
  }
  std::sort(out.begin(), out.end());
}

}  // namespace wmn::phy
