// Spatial neighbourhood index for the channel broadcast hot path.
//
// A uniform grid over the deployment area, cell size derived from the
// radios' detection range. Every attached node is binned by its
// mobility model's trajectory_bounds() — a region that provably
// contains the node for the lifetime of its current movement epoch —
// so a range query ("who could possibly be within R of this
// transmitter?") touches only the cells the query disk overlaps
// instead of walking all N radios. Nodes whose bounds are unbounded
// (or span too many cells to be worth binning) are *roamers*: they are
// included in every query, which makes the index transparently
// conservative — over-inclusion costs a little work, never
// correctness.
//
// Invalidation is push-based: the index registers itself as each
// model's MotionListener, so an epoch bump (new RWP leg, explicit
// set_position) marks just that node dirty. refresh() re-bins dirty
// nodes and bumps a structure version; the channel keys its per-source
// candidate caches on that version. An all-static mesh therefore pays
// for binning exactly once per run.
//
// Determinism contract: gather() returns candidate indices in
// ascending attach order, and only ever *excludes* a node when its
// epoch bounds are provably farther than the query range — so the
// caller's delivered sets, drop counters, and event order are
// bit-identical to the full scan (see docs/TOOLING.md).
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "mobility/vec2.hpp"

namespace wmn::phy {

class SpatialIndex final : public mobility::MotionListener {
 public:
  // Grid over [0, area_width] x [0, area_height]; positions outside
  // the area are clamped into the boundary cells (still correct, just
  // coarser there). cell_size_m > 0.
  SpatialIndex(double area_width_m, double area_height_m, double cell_size_m);
  ~SpatialIndex() override;

  // --- shared grid geometry -------------------------------------------
  // The sharded engine's region map (sim::ShardMap) must tile the exact
  // same cells as the delivery index, so the geometry rules are exposed
  // as pure static functions instead of living inline in the channel.
  struct Grid {
    std::uint32_t nx = 1;
    std::uint32_t ny = 1;
    double cell_m = 1.0;
  };
  // The channel's cell-size rule: half the largest finite detection
  // range (pass <= 0 for "no finite range"), clamped so neither a huge
  // range nor a huge area degenerates the grid.
  [[nodiscard]] static double cell_size_for(double max_finite_range_m,
                                            double area_width_m,
                                            double area_height_m);
  [[nodiscard]] static Grid grid_for(double area_width_m, double area_height_m,
                                     double cell_size_m);

  SpatialIndex(const SpatialIndex&) = delete;
  SpatialIndex& operator=(const SpatialIndex&) = delete;

  // Register the next node (attach order = index order). Registers the
  // index as the model's motion listener and bins the node.
  void add_node(const mobility::MobilityModel* model);

  // Re-bin every node whose movement epoch changed since the last
  // refresh. Cheap no-op when nothing moved.
  void refresh();

  // Bumped whenever any node is (re)binned; callers cache derived
  // structures keyed on this value.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  // Bounds captured at the last (re)bin of node i. A *point* bound
  // means the node's position is pinned until its next epoch bump —
  // the precondition for caching link budgets against it.
  [[nodiscard]] const mobility::TrajectoryBounds& bounds(std::uint32_t i) const {
    return nodes_[i].bounds;
  }
  [[nodiscard]] bool pinned(std::uint32_t i) const {
    return nodes_[i].bounds.is_point();
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t roamer_count() const { return roamers_.size(); }

  // Dynamic footprint (grid bins + per-node records + scratch) — feeds
  // the channel's bytes_per_node accounting.
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this) +
                        nodes_.capacity() * sizeof(Node) +
                        roamers_.capacity() * sizeof(std::uint32_t) +
                        dirty_.capacity() * sizeof(std::uint32_t) +
                        stamp_.capacity() * sizeof(std::uint32_t) +
                        cells_.capacity() * sizeof(std::vector<std::uint32_t>);
    for (const auto& c : cells_) bytes += c.capacity() * sizeof(std::uint32_t);
    return bytes;
  }

  // Candidate receivers for a transmission from node `src` that can
  // reach at most `range_m` metres: every node (except src, ascending
  // index order) whose bounds lie within `range_m` of src's bounds,
  // plus all roamers. An infinite/NaN range, or a roaming source,
  // degrades to "everyone" — the transparent full-scan fallback.
  // Exclusion guarantee: a node left out is, for the entire current
  // epoch of both endpoints, strictly farther than range_m from src.
  void gather(std::uint32_t src, double range_m,
              std::vector<std::uint32_t>& out);

  // MotionListener: mark the node dirty; re-binned on next refresh().
  void on_motion_epoch(std::uint32_t token) override;

 private:
  struct Node {
    const mobility::MobilityModel* model = nullptr;
    mobility::TrajectoryBounds bounds{};
    // Cell rectangle this node is binned into (inclusive); unused for
    // roamers.
    std::uint32_t cx0 = 0, cx1 = 0, cy0 = 0, cy1 = 0;
    bool roamer = false;
    bool dirty = false;
  };

  // A bound spanning more cells than this is cheaper to treat as a
  // roamer than to splat across the grid (long RWP legs).
  static constexpr std::uint32_t kRoamerCellLimit = 64;

  [[nodiscard]] std::uint32_t cell_x(double x) const;
  [[nodiscard]] std::uint32_t cell_y(double y) const;
  void bin(std::uint32_t i);
  void unbin(std::uint32_t i);

  double cell_size_m_;
  std::uint32_t nx_ = 1;
  std::uint32_t ny_ = 1;
  std::vector<std::vector<std::uint32_t>> cells_;  // cell -> node indices
  std::vector<std::uint32_t> roamers_;             // ascending
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> dirty_;
  std::uint64_t version_ = 0;

  // Query-local dedup stamps (a node can occupy several visited cells).
  std::vector<std::uint32_t> stamp_;
  std::uint32_t query_id_ = 0;
};

}  // namespace wmn::phy
