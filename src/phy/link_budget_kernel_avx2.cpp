// Explicit AVX2 lane implementation of the kernel's distance pass.
// This translation unit is the ONLY one compiled with -mavx2 (see
// src/phy/CMakeLists.txt); callers reach it through the runtime
// __builtin_cpu_supports dispatch in link_budget_kernel.cpp, so the
// binary stays runnable on pre-AVX2 hardware.
//
// Bit-identity with the scalar loop is load-bearing: subtraction,
// multiply, add, sqrt and max are all performed as separate IEEE-754
// operations in the same per-element order as link_distance_m(). In
// particular dx*dx + dy*dy uses _mm256_mul_pd/_mm256_add_pd — never an
// FMA, whose unrounded intermediate would diverge from the scalar
// path — and _mm256_sqrt_pd/_mm256_max_pd are correctly-rounded /
// exact selections. The equivalence tests compare both paths
// element-wise for exact equality.
#include <immintrin.h>

#include <cstddef>

#include "mobility/vec2.hpp"
#include "phy/propagation.hpp"

namespace wmn::phy::detail {

void compute_distances_avx2(const double* rx_x, const double* rx_y,
                            double* out, std::size_t n,
                            mobility::Vec2 tx_pos) {
  const __m256d tx = _mm256_set1_pd(tx_pos.x);
  const __m256d ty = _mm256_set1_pd(tx_pos.y);
  const __m256d floor = _mm256_set1_pd(0.05);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(tx, _mm256_loadu_pd(rx_x + i));
    const __m256d dy = _mm256_sub_pd(ty, _mm256_loadu_pd(rx_y + i));
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const __m256d d = _mm256_sqrt_pd(d2);
    _mm256_storeu_pd(out + i, _mm256_max_pd(d, floor));
  }
  for (; i < n; ++i) {
    out[i] = link_distance_m(tx_pos, mobility::Vec2{rx_x[i], rx_y[i]});
  }
}

}  // namespace wmn::phy::detail
