#include "phy/propagation.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/check.hpp"
#include "phy/units.hpp"
#include "sim/rng.hpp"

namespace wmn::phy {

void PropagationModel::rx_power_dbm_batch(const LinkBatchView& batch) const {
  // Fallback for models that don't provide a batch loop: the scalar
  // virtual per element. Bit-identity with the scalar path is then a
  // tautology; derived overrides must preserve it (the kernel tests
  // compare both paths element-wise).
  for (std::size_t i = 0; i < batch.n; ++i) {
    batch.out_power_dbm[i] = rx_power_dbm(
        batch.tx_power_dbm, batch.tx_pos,
        mobility::Vec2{batch.rx_x[i], batch.rx_y[i]}, batch.tx_id,
        batch.rx_id[i]);
  }
}

// --- Friis ------------------------------------------------------------

FriisModel::FriisModel(double frequency_hz, double system_loss_db)
    : frequency_hz_(frequency_hz), system_loss_db_(system_loss_db) {
  WMN_CHECK_GT(frequency_hz, 0.0, "carrier frequency must be positive");
}

double FriisModel::power_at(double tx_power_dbm, double d) const {
  const double lambda = kSpeedOfLight / frequency_hz_;
  const double pl_db =
      20.0 * std::log10(4.0 * std::numbers::pi * d / lambda) + system_loss_db_;
  return tx_power_dbm - pl_db;
}

double FriisModel::rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                mobility::Vec2 rx_pos, std::uint32_t,
                                std::uint32_t) const {
  return power_at(tx_power_dbm, link_distance_m(tx_pos, rx_pos));
}

void FriisModel::rx_power_dbm_batch(const LinkBatchView& batch) const {
  for (std::size_t i = 0; i < batch.n; ++i) {
    batch.out_power_dbm[i] = power_at(batch.tx_power_dbm, batch.distance_m[i]);
  }
}

double FriisModel::max_range_m(double tx_power_dbm, double floor_dbm) const {
  // tx - 20 log10(4 pi d / lambda) - L >= floor  <=>
  // d <= lambda / (4 pi) * 10^((tx - L - floor) / 20).
  const double lambda = kSpeedOfLight / frequency_hz_;
  return lambda / (4.0 * std::numbers::pi) *
         std::pow(10.0, (tx_power_dbm - system_loss_db_ - floor_dbm) / 20.0);
}

// --- Log-distance -------------------------------------------------------

LogDistanceModel::LogDistanceModel(double exponent, double reference_distance_m,
                                   double reference_loss_db)
    : exponent_(exponent),
      reference_distance_m_(reference_distance_m),
      reference_loss_db_(reference_loss_db) {
  WMN_CHECK(exponent > 0.0 && reference_distance_m > 0.0,
            "log-distance model needs positive exponent and reference");
}

double LogDistanceModel::power_at(double tx_power_dbm, double d) const {
  const double dc = std::max(d, reference_distance_m_);
  const double pl_db =
      reference_loss_db_ + 10.0 * exponent_ * std::log10(dc / reference_distance_m_);
  return tx_power_dbm - pl_db;
}

double LogDistanceModel::rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                      mobility::Vec2 rx_pos, std::uint32_t,
                                      std::uint32_t) const {
  return power_at(tx_power_dbm, link_distance_m(tx_pos, rx_pos));
}

void LogDistanceModel::rx_power_dbm_batch(const LinkBatchView& batch) const {
  for (std::size_t i = 0; i < batch.n; ++i) {
    batch.out_power_dbm[i] = power_at(batch.tx_power_dbm, batch.distance_m[i]);
  }
}

double LogDistanceModel::max_range_m(double tx_power_dbm,
                                     double floor_dbm) const {
  // Power is constant for d <= d0 and strictly decreasing beyond, so
  // the inversion is exact. A result below d0 means even the clamped
  // near-field power sits under the floor: nothing is in range.
  return reference_distance_m_ *
         std::pow(10.0, (tx_power_dbm - reference_loss_db_ - floor_dbm) /
                            (10.0 * exponent_));
}

// --- Two-ray ground -----------------------------------------------------

TwoRayGroundModel::TwoRayGroundModel(double frequency_hz, double antenna_height_m)
    : friis_(frequency_hz, 0.0),
      frequency_hz_(frequency_hz),
      antenna_height_m_(antenna_height_m) {
  WMN_CHECK_GT(antenna_height_m, 0.0, "antenna height must be positive");
}

double TwoRayGroundModel::power_at(double tx_power_dbm, double d) const {
  const double lambda = kSpeedOfLight / frequency_hz_;
  const double dc = 4.0 * std::numbers::pi * antenna_height_m_ * antenna_height_m_ /
                    lambda;
  if (d < dc) return friis_.power_at(tx_power_dbm, d);
  // Pr = Pt * ht^2 hr^2 / d^4 (both antennas at the same height).
  const double h2 = antenna_height_m_ * antenna_height_m_;
  const double gain_lin = (h2 * h2) / (d * d * d * d);
  return tx_power_dbm + linear_to_db(gain_lin);
}

double TwoRayGroundModel::rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                       mobility::Vec2 rx_pos, std::uint32_t,
                                       std::uint32_t) const {
  return power_at(tx_power_dbm, link_distance_m(tx_pos, rx_pos));
}

void TwoRayGroundModel::rx_power_dbm_batch(const LinkBatchView& batch) const {
  for (std::size_t i = 0; i < batch.n; ++i) {
    batch.out_power_dbm[i] = power_at(batch.tx_power_dbm, batch.distance_m[i]);
  }
}

double TwoRayGroundModel::max_range_m(double tx_power_dbm,
                                      double floor_dbm) const {
  // Beyond max(r_friis, r_ground) both pieces are below the floor, so
  // whichever side of the crossover a distance falls on, it is out of
  // range. r_ground from Pt * h^4 / d^4 >= floor (linear):
  // d <= h * 10^((tx - floor) / 40).
  const double r_friis = friis_.max_range_m(tx_power_dbm, floor_dbm);
  const double r_ground =
      antenna_height_m_ * std::pow(10.0, (tx_power_dbm - floor_dbm) / 40.0);
  return std::max(r_friis, r_ground);
}

// --- Log-normal shadowing -------------------------------------------------

LogNormalShadowing::LogNormalShadowing(std::unique_ptr<PropagationModel> inner,
                                       double sigma_db, std::uint64_t seed)
    : inner_(std::move(inner)), sigma_db_(sigma_db), seed_(seed) {
  WMN_CHECK(inner_ != nullptr && sigma_db >= 0.0,
            "shadowing wraps an inner model with non-negative sigma");
}

double LogNormalShadowing::link_offset_db(std::uint32_t a, std::uint32_t b) const {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  const std::uint64_t link = (static_cast<std::uint64_t>(lo) << 32) | hi;
  // One Gaussian draw from a stream keyed by (seed, link); the stream
  // is recreated per call, which is cheap (a few integer mixes) and
  // guarantees the offset is a pure function of (seed, link).
  sim::RngStream rng(seed_, link ^ 0x5AD0'0000'0000'0001ULL);
  return rng.normal(0.0, sigma_db_);
}

double LogNormalShadowing::rx_power_dbm(double tx_power_dbm, mobility::Vec2 tx_pos,
                                        mobility::Vec2 rx_pos, std::uint32_t tx_id,
                                        std::uint32_t rx_id) const {
  return inner_->rx_power_dbm(tx_power_dbm, tx_pos, rx_pos, tx_id, rx_id) +
         link_offset_db(tx_id, rx_id);
}

void LogNormalShadowing::rx_power_dbm_batch(const LinkBatchView& batch) const {
  inner_->rx_power_dbm_batch(batch);
  // Order-free: each offset depends only on (seed, link ids), so adding
  // them after the inner batch is the same as interleaving them with
  // scalar evaluation. FP addition order per element is unchanged
  // (inner + offset), so the sum is bit-identical to the scalar path.
  for (std::size_t i = 0; i < batch.n; ++i) {
    batch.out_power_dbm[i] += link_offset_db(batch.tx_id, batch.rx_id[i]);
  }
}

double LogNormalShadowing::max_range_m(double tx_power_dbm,
                                       double floor_dbm) const {
  // The per-link offset is provably inside +-kSigmaBound * sigma (see
  // the header), so any pair whose *inner* power is below
  // floor - kSigmaBound * sigma is below floor after shadowing too.
  return inner_->max_range_m(tx_power_dbm,
                             floor_dbm - kSigmaBound * sigma_db_);
}

}  // namespace wmn::phy
