// Power unit conversions. Powers cross module boundaries in dBm
// (human-scale, what configs use) but are summed in milliwatts
// (interference is additive in linear units only).
#pragma once

#include <cmath>

namespace wmn::phy {

[[nodiscard]] inline double dbm_to_mw(double dbm) {
  return std::pow(10.0, dbm / 10.0);
}

[[nodiscard]] inline double mw_to_dbm(double mw) {
  // Floor far below any modelled signal so log10(0) cannot occur.
  if (mw <= 1e-30) return -300.0;
  return 10.0 * std::log10(mw);
}

[[nodiscard]] inline double db_to_linear(double db) {
  return std::pow(10.0, db / 10.0);
}

[[nodiscard]] inline double linear_to_db(double lin) {
  if (lin <= 1e-30) return -300.0;
  return 10.0 * std::log10(lin);
}

// Speed of light (m/s) for propagation delay.
inline constexpr double kSpeedOfLight = 299'792'458.0;

}  // namespace wmn::phy
