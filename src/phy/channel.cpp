#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/check.hpp"
#include "phy/shard_router.hpp"
#include "phy/units.hpp"

namespace wmn::phy {

WirelessChannel::WirelessChannel(sim::Simulator& simulator,
                                 std::unique_ptr<PropagationModel> propagation)
    : sim_(simulator), propagation_(std::move(propagation)) {
  WMN_CHECK_NOTNULL(propagation_, "channel needs a propagation model");
}

void WirelessChannel::attach(WifiPhy* phy) {
  WMN_CHECK_NOTNULL(phy, "attach(nullptr)");
  phy->set_channel_index(static_cast<std::uint32_t>(radios_.size()));
  radios_.push_back(phy);
  phy->attach(this);
  neighbor_caches_.emplace_back();
  // A new radio can lower the shared detection floor and is a new
  // candidate for every existing source: recompute ranges and let the
  // version mismatch invalidate all cached neighbour lists.
  ranges_valid_ = false;
  if (index_ != nullptr) index_->add_node(phy->mobility());
}

void WirelessChannel::attach_remote(WifiPhy* phy) {
  WMN_CHECK_NOTNULL(phy, "attach_remote(nullptr)");
  // No set_channel_index / phy->attach: the home channel owns those.
  // The table still grows so attach indices stay globally consistent.
  radios_.push_back(phy);
  neighbor_caches_.emplace_back();
  ranges_valid_ = false;
  if (index_ != nullptr) index_->add_node(phy->mobility());
}

void WirelessChannel::set_shard_router(ShardRouter* router, std::uint32_t region_id) {
  router_ = router;
  region_id_ = region_id;
}

void WirelessChannel::accept_cross(WifiPhy* rx, net::Packet packet, double p_dbm,
                                   double p_mw, sim::Time release_at,
                                   sim::Time duration) {
  const std::uint32_t slot = acquire_slot();
  PendingDelivery& d = pending_[slot];
  d.packet.emplace(std::move(packet));
  d.rx = rx;
  d.rx_power_dbm = p_dbm;
  d.rx_power_mw = p_mw;
  d.duration = duration;
  ++in_flight_;
  sim_.schedule_at(release_at, [this, slot] { deliver(slot); });
}

void WirelessChannel::enable_spatial_index(double area_width_m,
                                           double area_height_m) {
  WMN_CHECK(area_width_m > 0.0 && area_height_m > 0.0,
            "spatial index needs a positive deployment area");
  WMN_CHECK(index_ == nullptr, "spatial index already built");
  index_enabled_ = true;
  area_width_m_ = area_width_m;
  area_height_m_ = area_height_m;
}

double WirelessChannel::link_rx_power_dbm(const WifiPhy& tx,
                                          const WifiPhy& rx) const {
  const sim::Time now = sim_.now();
  return propagation_->rx_power_dbm(tx.config().tx_power_dbm, tx.position(now),
                                    rx.position(now), tx.node_id(), rx.node_id());
}

std::uint32_t WirelessChannel::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pending_[slot].next_free;
    pending_[slot].next_free = kNilSlot;
    return slot;
  }
  pending_.emplace_back();
  return static_cast<std::uint32_t>(pending_.size() - 1);
}

void WirelessChannel::deliver(std::uint32_t slot) {
  PendingDelivery& d = pending_[slot];
  WMN_CHECK(d.packet.has_value(), "delivery slot fired twice");
  net::Packet packet = std::move(*d.packet);
  WifiPhy* rx = d.rx;
  const double p_dbm = d.rx_power_dbm;
  const double p_mw = d.rx_power_mw;
  const sim::Time duration = d.duration;
  d.packet.reset();
  d.rx = nullptr;
  d.next_free = free_head_;
  free_head_ = slot;
  --in_flight_;
  // The receiver may have crashed during the propagation delay.
  if (fault_ != nullptr && !fault_->node_up(rx->node_id())) {
    ++counters_.copies_dropped_fault;
    return;
  }
  rx->begin_arrival(std::move(packet), p_dbm, p_mw, duration);
}

void WirelessChannel::schedule_delivery(WifiPhy* rx, const net::Packet& packet,
                                        double p_dbm, double p_mw,
                                        sim::Time delay, sim::Time duration) {
  ++counters_.copies_delivered;
  // Sharded runs route receivers homed in another region through the
  // barrier-merged inboxes; the copy is accounted here, where the
  // physics decided it.
  if (router_ != nullptr) {
    const std::uint32_t dst = router_->region_of(rx->node_id());
    if (dst != region_id_) {
      router_->post(region_id_, dst, rx, packet, p_dbm, p_mw, sim_.now() + delay,
                    duration);
      return;
    }
  }
  // Each receiver gets its own (cheap, header-sharing) packet copy,
  // parked in a recycled slot until the propagation delay elapses.
  const std::uint32_t slot = acquire_slot();
  PendingDelivery& d = pending_[slot];
  d.packet.emplace(packet);
  d.rx = rx;
  d.rx_power_dbm = p_dbm;
  d.rx_power_mw = p_mw;
  d.duration = duration;
  ++in_flight_;
  sim_.schedule(delay, [this, slot] { deliver(slot); });
}

void WirelessChannel::refresh_ranges() {
  min_detection_floor_dbm_ = std::numeric_limits<double>::infinity();
  for (const WifiPhy* rx : radios_) {
    min_detection_floor_dbm_ =
        std::min(min_detection_floor_dbm_, rx->config().detection_floor_dbm);
  }
  radio_range_m_.resize(radios_.size());
  for (std::size_t i = 0; i < radios_.size(); ++i) {
    radio_range_m_[i] = propagation_->max_range_m(
        radios_[i]->config().tx_power_dbm, min_detection_floor_dbm_);
  }
  // Ranges feed the cached candidate lists: force rebuilds.
  for (NeighborCache& nc : neighbor_caches_) {
    nc.built_version = ~std::uint64_t{0};
  }
  ranges_valid_ = true;
}

void WirelessChannel::build_spatial_index() {
  // Cell size derives from the largest finite detection range; with
  // only unbounded models (max_range_m == inf) the grid degenerates to
  // coarse cells and every query returns everyone — correct, just not
  // culled — while the link-budget cache still pays off.
  double max_range = 0.0;
  for (const double r : radio_range_m_) {
    if (std::isfinite(r)) max_range = std::max(max_range, r);
  }
  const double cell =
      SpatialIndex::cell_size_for(max_range, area_width_m_, area_height_m_);
  index_ = std::make_unique<SpatialIndex>(area_width_m_, area_height_m_, cell);
  for (const WifiPhy* phy : radios_) index_->add_node(phy->mobility());
}

void WirelessChannel::rebuild_neighbor_cache(std::uint32_t src_index) {
  NeighborCache& nc = neighbor_caches_[src_index];
  nc.rx_index.clear();
  nc.is_cached.clear();
  nc.power_dbm.clear();
  nc.power_mw.clear();
  nc.delay.clear();
  nc.culled = 0;
  nc.n_live = 0;
  const WifiPhy& src = *radios_[src_index];
  index_->gather(src_index, radio_range_m_[src_index], gather_scratch_);
  nc.culled = radios_.size() - 1 - gather_scratch_.size();
  const bool src_pinned = index_->pinned(src_index);
  const mobility::Vec2 src_pos = index_->bounds(src_index).lo;

  // Both endpoints holding still for this index version means the
  // budget can be memoised: batch every such pair through the kernel
  // once (identical math to what a transmission would run, including
  // the shadowing per-link draw) and store power in both units plus
  // the propagation delay. Pairs already under the receiver's floor
  // fold into the bulk drop count.
  rebuild_batch_.clear();
  if (src_pinned) {
    for (const std::uint32_t i : gather_scratch_) {
      if (index_->pinned(i)) {
        rebuild_batch_.push(index_->bounds(i).lo, radios_[i]->node_id(), i);
      }
    }
    LinkBudgetKernel::evaluate(*propagation_, src.config().tx_power_dbm,
                               src_pos, src.node_id(), rebuild_batch_,
                               eval_mode_);
  }

  std::size_t cursor = 0;
  for (const std::uint32_t i : gather_scratch_) {
    if (src_pinned && index_->pinned(i)) {
      const double p_dbm = rebuild_batch_.power_dbm[cursor];
      const double dist = rebuild_batch_.distance_m[cursor];
      ++cursor;
      if (p_dbm < radios_[i]->config().detection_floor_dbm) {
        ++nc.culled;
        continue;
      }
      nc.rx_index.push_back(i);
      nc.is_cached.push_back(1);
      nc.power_dbm.push_back(p_dbm);
      nc.power_mw.push_back(dbm_to_mw(p_dbm));
      nc.delay.push_back(sim::Time::seconds(dist / kSpeedOfLight));
    } else {
      nc.rx_index.push_back(i);
      nc.is_cached.push_back(0);
      nc.power_dbm.push_back(0.0);
      nc.power_mw.push_back(0.0);
      nc.delay.push_back(sim::Time{});
      ++nc.n_live;
    }
  }
  nc.built_version = index_->version();
}

void WirelessChannel::transmit_indexed(const WifiPhy& src,
                                       const net::Packet& packet,
                                       sim::Time duration, sim::Time now,
                                       mobility::Vec2 tx_pos) {
  index_->refresh();
  const std::uint32_t s = src.channel_index();
  NeighborCache& nc = neighbor_caches_[s];
  if (nc.built_version != index_->version()) rebuild_neighbor_cache(s);
  // Every receiver the index culled is provably below its detection
  // floor: account the whole batch so the counter equals the full
  // scan's (N-1 - examined) + individually-dropped identity.
  counters_.copies_dropped_floor += nc.culled;
  const std::size_t n = nc.rx_index.size();

  if (nc.n_live == 0) {
    // Static mesh: every budget is memoised. Branch-free sweep over
    // the SoA arrays; per candidate this is a packet copy, a slot and
    // a scheduled event — no propagation math, no unit conversions.
    for (std::size_t i = 0; i < n; ++i) {
      schedule_delivery(radios_[nc.rx_index[i]], packet, nc.power_dbm[i],
                        nc.power_mw[i], nc.delay[i], duration);
    }
    return;
  }

  // Mixed cache: batch the mobile candidates through the kernel, then
  // merge with the memoised ones in ascending attach order (the order
  // the full scan visits, so tie-broken event order is identical).
  batch_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (nc.is_cached[i] == 0) {
      const std::uint32_t r = nc.rx_index[i];
      batch_.push(radios_[r]->position(now), radios_[r]->node_id(), r);
    }
  }
  LinkBudgetKernel::evaluate(*propagation_, src.config().tx_power_dbm, tx_pos,
                             src.node_id(), batch_, eval_mode_);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (nc.is_cached[i] != 0) {
      schedule_delivery(radios_[nc.rx_index[i]], packet, nc.power_dbm[i],
                        nc.power_mw[i], nc.delay[i], duration);
      continue;
    }
    const double p_dbm = batch_.power_dbm[cursor];
    const double dist = batch_.distance_m[cursor];
    ++cursor;
    WifiPhy* rx = radios_[nc.rx_index[i]];
    if (p_dbm < rx->config().detection_floor_dbm) {
      ++counters_.copies_dropped_floor;
      continue;
    }
    schedule_delivery(rx, packet, p_dbm, dbm_to_mw(p_dbm),
                      sim::Time::seconds(dist / kSpeedOfLight), duration);
  }
}

void WirelessChannel::transmit_full_scan(const WifiPhy& src,
                                         const net::Packet& packet,
                                         sim::Time duration, sim::Time now,
                                         mobility::Vec2 tx_pos) {
  batch_.clear();
  for (WifiPhy* rx : radios_) {
    if (rx == &src) continue;
    batch_.push(rx->position(now), rx->node_id(),
                rx->channel_index());
  }
  LinkBudgetKernel::compute_distances(batch_, tx_pos, eval_mode_);

  // Distance prefilter: the source's conservative max_range_m
  // inversion at the minimum attached floor — the same proof the
  // spatial index culls with. Every pair farther out is provably below
  // every receiver's floor, so it can be floor-accounted without
  // paying the model's transcendentals. (The > 0.05 guard keeps the
  // proof exact where the distance floor could round a degenerate
  // range up.)
  const double r = radio_range_m_[src.channel_index()];
  std::size_t n = batch_.size();
  if (std::isfinite(r) && r > 0.05) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < n; ++read) {
      if (batch_.distance_m[read] > r) {
        ++counters_.copies_dropped_floor;
        continue;
      }
      if (write != read) batch_.compact_keep(write, read);
      ++write;
    }
    batch_.resize_down(write);
    n = write;
  }

  LinkBudgetKernel::evaluate_with_distances(
      *propagation_, src.config().tx_power_dbm, tx_pos, src.node_id(), batch_);
  for (std::size_t i = 0; i < n; ++i) {
    WifiPhy* rx = radios_[batch_.rx_index[i]];
    const double p_dbm = batch_.power_dbm[i];
    if (p_dbm < rx->config().detection_floor_dbm) {
      ++counters_.copies_dropped_floor;
      continue;
    }
    schedule_delivery(rx, packet, p_dbm, dbm_to_mw(p_dbm),
                      sim::Time::seconds(batch_.distance_m[i] / kSpeedOfLight),
                      duration);
  }
}

void WirelessChannel::transmit_fault_scan(const WifiPhy& src,
                                          const net::Packet& packet,
                                          sim::Time duration, sim::Time now,
                                          mobility::Vec2 tx_pos) {
  // Per-pair scalar walk: the overlay decides per receiver whether a
  // drop is a fault drop or a floor drop, and that attribution (plus
  // blackout attenuation) must see every pair in order.
  for (WifiPhy* rx : radios_) {
    if (rx == &src) continue;
    const mobility::Vec2 rx_pos = rx->position(now);
    double p_dbm = propagation_->rx_power_dbm(
        src.config().tx_power_dbm, tx_pos, rx_pos, src.node_id(), rx->node_id());
    if (!fault_->node_up(rx->node_id())) {
      ++counters_.copies_dropped_fault;
      continue;
    }
    p_dbm -= fault_->link_loss_db(src.node_id(), rx->node_id(), now);
    if (p_dbm < rx->config().detection_floor_dbm) {
      ++counters_.copies_dropped_floor;
      continue;
    }
    schedule_delivery(
        rx, packet, p_dbm, dbm_to_mw(p_dbm),
        sim::Time::seconds(link_distance_m(tx_pos, rx_pos) / kSpeedOfLight),
        duration);
  }
}

void WirelessChannel::transmit(const WifiPhy& src, const net::Packet& packet,
                               sim::Time duration) {
  // A crashed radio never reaches transmit() (WifiPhy::send checks up_),
  // but the belt is cheap and keeps the invariant local. The guard runs
  // before any counting: a downed source's send is not a transmission.
  if (fault_ != nullptr && !fault_->node_up(src.node_id())) return;
  ++counters_.transmissions;
  const sim::Time now = sim_.now();
  const mobility::Vec2 tx_pos = src.position(now);

  // With a fault overlay installed both batched paths stand down: the
  // overlay's per-receiver attribution must see every pair.
  if (fault_ != nullptr) {
    transmit_fault_scan(src, packet, duration, now, tx_pos);
    return;
  }

  if (!ranges_valid_) refresh_ranges();
  if (index_enabled_) {
    // Grid sizing needs the detection ranges, so refresh_ranges() must
    // have run first.
    if (index_ == nullptr) build_spatial_index();
    transmit_indexed(src, packet, duration, now, tx_pos);
    return;
  }
  transmit_full_scan(src, packet, duration, now, tx_pos);
}

std::size_t WirelessChannel::memory_bytes() const {
  std::size_t bytes = sizeof(*this) +
                      pending_.capacity() * sizeof(PendingDelivery) +
                      radios_.capacity() * sizeof(WifiPhy*) +
                      radio_range_m_.capacity() * sizeof(double) +
                      gather_scratch_.capacity() * sizeof(std::uint32_t) +
                      batch_.memory_bytes() + rebuild_batch_.memory_bytes() +
                      neighbor_caches_.capacity() * sizeof(NeighborCache);
  for (const NeighborCache& nc : neighbor_caches_) bytes += nc.memory_bytes();
  if (index_ != nullptr) bytes += index_->memory_bytes();
  return bytes;
}

}  // namespace wmn::phy
