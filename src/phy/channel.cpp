#include "phy/channel.hpp"

#include <utility>

#include "core/check.hpp"

namespace wmn::phy {

WirelessChannel::WirelessChannel(sim::Simulator& simulator,
                                 std::unique_ptr<PropagationModel> propagation)
    : sim_(simulator), propagation_(std::move(propagation)) {
  WMN_CHECK_NOTNULL(propagation_, "channel needs a propagation model");
}

void WirelessChannel::attach(WifiPhy* phy) {
  WMN_CHECK_NOTNULL(phy, "attach(nullptr)");
  radios_.push_back(phy);
  phy->attach(this);
}

double WirelessChannel::link_rx_power_dbm(const WifiPhy& tx,
                                          const WifiPhy& rx) const {
  const sim::Time now = sim_.now();
  return propagation_->rx_power_dbm(tx.config().tx_power_dbm, tx.position(now),
                                    rx.position(now), tx.node_id(), rx.node_id());
}

std::uint32_t WirelessChannel::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pending_[slot].next_free;
    pending_[slot].next_free = kNilSlot;
    return slot;
  }
  pending_.emplace_back();
  return static_cast<std::uint32_t>(pending_.size() - 1);
}

void WirelessChannel::deliver(std::uint32_t slot) {
  PendingDelivery& d = pending_[slot];
  WMN_CHECK(d.packet.has_value(), "delivery slot fired twice");
  net::Packet packet = std::move(*d.packet);
  WifiPhy* rx = d.rx;
  const double p_dbm = d.rx_power_dbm;
  const sim::Time duration = d.duration;
  d.packet.reset();
  d.rx = nullptr;
  d.next_free = free_head_;
  free_head_ = slot;
  --in_flight_;
  // The receiver may have crashed during the propagation delay.
  if (fault_ != nullptr && !fault_->node_up(rx->node_id())) {
    ++counters_.copies_dropped_fault;
    return;
  }
  rx->begin_arrival(std::move(packet), p_dbm, duration);
}

void WirelessChannel::transmit(const WifiPhy& src, const net::Packet& packet,
                               sim::Time duration) {
  ++counters_.transmissions;
  const sim::Time now = sim_.now();
  const mobility::Vec2 tx_pos = src.position(now);
  // A crashed radio never reaches transmit() (WifiPhy::send checks up_),
  // but the belt is cheap and keeps the invariant local.
  if (fault_ != nullptr && !fault_->node_up(src.node_id())) return;

  for (WifiPhy* rx : radios_) {
    if (rx == &src) continue;
    const mobility::Vec2 rx_pos = rx->position(now);
    double p_dbm = propagation_->rx_power_dbm(
        src.config().tx_power_dbm, tx_pos, rx_pos, src.node_id(), rx->node_id());
    if (fault_ != nullptr) {
      if (!fault_->node_up(rx->node_id())) {
        ++counters_.copies_dropped_fault;
        continue;
      }
      p_dbm -= fault_->link_loss_db(src.node_id(), rx->node_id(), now);
    }
    if (p_dbm < rx->config().detection_floor_dbm) {
      ++counters_.copies_dropped_floor;
      continue;
    }
    ++counters_.copies_delivered;
    const double dist = tx_pos.distance_to(rx_pos);
    const sim::Time delay = sim::Time::seconds(dist / kSpeedOfLight);
    // Each receiver gets its own (cheap, header-sharing) packet copy,
    // parked in a recycled slot until the propagation delay elapses.
    const std::uint32_t slot = acquire_slot();
    PendingDelivery& d = pending_[slot];
    d.packet.emplace(packet);
    d.rx = rx;
    d.rx_power_dbm = p_dbm;
    d.duration = duration;
    ++in_flight_;
    sim_.schedule(delay, [this, slot] { deliver(slot); });
  }
}

}  // namespace wmn::phy
