#include "fault/fault_timeline.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "fault/injector.hpp"
#include "sim/rng.hpp"

namespace wmn::fault {

namespace {

// A faithful copy of the Injector's crash/churn state machine, minus
// the layer choreography and the blackout active-list (both derivable
// from the plan alone). Draw-for-draw lockstep with injector.cpp is
// the invariant: every edit there needs a mirror here, and the
// equivalence test pins it.
class Replayer {
 public:
  Replayer(std::uint64_t master_seed, const FaultPlan& plan, std::size_t n_nodes,
           std::vector<FaultTimeline::NodeWindow>& windows,
           FaultTimeline::Counters& counters)
      : sim_(master_seed),
        plan_(plan),
        windows_(windows),
        counters_(counters),
        down_(n_nodes, 0),
        epoch_(n_nodes, 0),
        open_window_(n_nodes, 0),
        churn_rng_(sim_.make_stream(kFaultStreamSalt)) {}

  void run(sim::Time horizon) {
    const auto n = static_cast<std::uint32_t>(down_.size());
    for (const NodeOutage& o : plan_.outages) {
      WMN_CHECK(o.node < n, "outage for a node outside the topology");
      WMN_CHECK(o.down_at < o.up_at, "outage window must have positive length");
      const std::uint32_t node = o.node;
      const sim::Time up_at = o.up_at;
      sim_.schedule_at(o.down_at, [this, node, up_at] { crash(node, up_at); });
    }
    for (const LinkBlackout& b : plan_.blackouts) {
      WMN_CHECK(b.a < n && b.b < n, "blackout for a node outside the topology");
      WMN_CHECK(b.a != b.b, "blackout needs two distinct endpoints");
      WMN_CHECK(b.from < b.to, "blackout window must have positive length");
      WMN_CHECK_GE(b.attenuation_db, 0.0, "blackout attenuation must be >= 0");
      ++counters_.blackouts;
      // The injector's toggle events only maintain its live active
      // list; the frozen timeline evaluates blackouts from the plan.
    }
    if (plan_.churn.enabled()) {
      WMN_CHECK_GT(plan_.churn.mean_downtime.ns(), std::int64_t{0},
                   "churn needs a positive mean downtime");
      WMN_CHECK_GT(n, 0u, "churn needs at least one node");
      schedule_next_churn();
    }
    sim_.run_until(horizon);
  }

 private:
  void crash(std::uint32_t node, sim::Time up_at) {
    if (down_[node] != 0) return;
    down_[node] = 1;
    ++epoch_[node];
    ++counters_.crashes;
    open_window_[node] = windows_.size();
    windows_.push_back(
        FaultTimeline::NodeWindow{node, sim_.now(), sim::Time{}, true});
    const std::uint64_t epoch = epoch_[node];
    sim_.schedule_at(up_at, [this, node, epoch] { rejoin(node, epoch); });
  }

  void rejoin(std::uint32_t node, std::uint64_t epoch) {
    if (down_[node] == 0 || epoch_[node] != epoch) return;
    down_[node] = 0;
    ++counters_.rejoins;
    FaultTimeline::NodeWindow& w = windows_[open_window_[node]];
    WMN_CHECK(w.open, "rejoin closing the wrong window");
    w.up_at = sim_.now();
    w.open = false;
  }

  void schedule_next_churn() {
    const double mean_gap_s = 1.0 / plan_.churn.rate_per_s;
    const sim::Time base = std::max(sim_.now(), plan_.churn.start);
    const sim::Time t =
        base + sim::Time::seconds(churn_rng_.exponential(mean_gap_s));
    if (t >= plan_.churn.stop) return;
    sim_.schedule_at(t, [this] { churn_event(); });
  }

  void churn_event() {
    const auto victim = static_cast<std::uint32_t>(
        churn_rng_.uniform_u64(0, down_.size() - 1));
    if (down_[victim] == 0) {
      const double down_s = std::max(
          0.1, churn_rng_.exponential(plan_.churn.mean_downtime.to_seconds()));
      crash(victim, sim_.now() + sim::Time::seconds(down_s));
    }
    schedule_next_churn();
  }

  sim::Simulator sim_;
  const FaultPlan& plan_;
  std::vector<FaultTimeline::NodeWindow>& windows_;
  FaultTimeline::Counters& counters_;
  std::vector<std::uint8_t> down_;
  std::vector<std::uint64_t> epoch_;
  std::vector<std::size_t> open_window_;
  sim::RngStream churn_rng_;
};

}  // namespace

FaultTimeline::FaultTimeline(std::uint64_t master_seed, const FaultPlan& plan,
                             std::size_t n_nodes, sim::Time horizon)
    : blackouts_(plan.blackouts) {
  Replayer replayer(master_seed, plan, n_nodes, node_windows_, counters_);
  replayer.run(horizon);
  by_node_.resize(n_nodes);
  for (std::uint32_t i = 0; i < node_windows_.size(); ++i) {
    by_node_[node_windows_[i].node].push_back(i);
  }
}

bool FaultTimeline::node_up(std::uint32_t node, sim::Time now) const {
  if (node >= by_node_.size()) return true;
  for (const std::uint32_t wi : by_node_[node]) {
    const NodeWindow& w = node_windows_[wi];
    if (now < w.down_at) continue;
    if (w.open || now < w.up_at) return false;
  }
  return true;
}

// Pure-time evaluation matches the injector's event-driven active
// list: the toggle events are scheduled at construction, so at t ==
// from (resp. to) they run before any same-time transmission — i.e.
// the blackout is in force exactly on [from, to).
double FaultTimeline::link_loss_db(std::uint32_t tx, std::uint32_t rx,
                                   sim::Time now) const {
  double loss = 0.0;
  for (const LinkBlackout& b : blackouts_) {
    if (now < b.from || now >= b.to) continue;
    const bool forward = b.a == tx && b.b == rx;
    const bool reverse = b.bidirectional && b.a == rx && b.b == tx;
    if (forward || reverse) loss += b.attenuation_db;
  }
  return loss;
}

bool FaultTimeline::in_fault_window(sim::Time t) const {
  for (const NodeWindow& w : node_windows_) {
    if (t < w.down_at) continue;
    if (w.open || t < w.up_at) return true;
  }
  for (const LinkBlackout& b : blackouts_) {
    if (t >= b.from && t < b.to) return true;
  }
  return false;
}

sim::Time FaultTimeline::total_node_downtime(sim::Time now) const {
  sim::Time total{};
  for (const NodeWindow& w : node_windows_) {
    total += (w.open ? now : w.up_at) - w.down_at;
  }
  return total;
}

}  // namespace wmn::fault
