// FaultTimeline: the fault::Injector's realized history, precomputed
// for the sharded engine.
//
// The Injector mutates per-node state from scheduled events on the one
// simulation calendar — which a sharded run does not have: a region
// thread consulting a shared injector mid-epoch would race another
// region's crash event. But the injector's entire behaviour is a pure
// function of (plan, master seed, node count): churn draws come from
// one RNG stream consumed in event order *regardless of network state*
// (a victim that is already down still consumes its draw — see
// injector.cpp), and static outages/blackouts come verbatim from the
// plan. So the whole fault history can be replayed up front — the
// timeline runs a faithful copy of the injector state machine on a
// throwaway calendar to the scenario horizon — and frozen into
// immutable windows that every region thread reads without
// synchronisation. tests/test_shard_map.cpp pins replay-vs-injector
// equivalence.
//
// The crash/rejoin choreography (pause/power_down/set_up...) is NOT
// performed here: the scenario schedules it from node_windows() onto
// each victim's home-region calendar at construction time, which also
// gives those events the earliest insertion sequence at their
// timestamp — the same ordering the injector's ctor-scheduled events
// have in a serial run.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "phy/fault_overlay.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wmn::fault {

class FaultTimeline {
 public:
  // One realized node outage. `open` means no rejoin before the
  // horizon (the node stays down to the end of the run).
  struct NodeWindow {
    std::uint32_t node = 0;
    sim::Time down_at{};
    sim::Time up_at{};
    bool open = false;
  };

  struct Counters {
    std::uint64_t crashes = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t blackouts = 0;
  };

  // Replays `plan` for `n_nodes` nodes to `horizon` (the scenario end,
  // inclusive — matching the serial run_until the injector lives in).
  FaultTimeline(std::uint64_t master_seed, const FaultPlan& plan,
                std::size_t n_nodes, sim::Time horizon);

  FaultTimeline(const FaultTimeline&) = delete;
  FaultTimeline& operator=(const FaultTimeline&) = delete;

  // --- queries (thread-safe: all state is frozen after construction) --
  [[nodiscard]] bool node_up(std::uint32_t node, sim::Time now) const;
  [[nodiscard]] double link_loss_db(std::uint32_t tx, std::uint32_t rx,
                                    sim::Time now) const;
  [[nodiscard]] bool in_fault_window(sim::Time t) const;
  [[nodiscard]] sim::Time total_node_downtime(sim::Time now) const;

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const std::vector<NodeWindow>& node_windows() const {
    return node_windows_;
  }

 private:
  std::vector<NodeWindow> node_windows_;          // replay order
  std::vector<std::vector<std::uint32_t>> by_node_;  // node -> window indices
  std::vector<LinkBlackout> blackouts_;           // from the plan verbatim
  Counters counters_;
};

// Adapter installed on one region's channel: a phy::FaultOverlay whose
// "now" is that region's clock. The overlay interface has no time
// parameter (the serial injector tracks state in real event time), so
// each region gets its own adapter bound to its own simulator.
class TimelineOverlay final : public phy::FaultOverlay {
 public:
  TimelineOverlay(const FaultTimeline& timeline, const sim::Simulator& region_sim)
      : timeline_(timeline), sim_(region_sim) {}

  [[nodiscard]] bool node_up(std::uint32_t node) const override {
    return timeline_.node_up(node, sim_.now());
  }
  [[nodiscard]] double link_loss_db(std::uint32_t tx, std::uint32_t rx,
                                    sim::Time now) const override {
    return timeline_.link_loss_db(tx, rx, now);
  }

 private:
  const FaultTimeline& timeline_;
  const sim::Simulator& sim_;
};

}  // namespace wmn::fault
