// Declarative fault schedule for one run.
//
// A FaultPlan is pure data — three kinds of disruption, all resolved
// against simulated time so the same (plan, seed) pair always replays
// the same failure history:
//
//   * NodeOutage    — a scheduled crash/recover pair for one node;
//   * LinkBlackout  — a time window during which a node pair's link is
//                     attenuated (default hard enough to sever it)
//                     while both radios stay up;
//   * ChurnSpec     — a Poisson process of crash -> down -> rejoin
//                     cycles over random victims, drawn from a
//                     dedicated RNG stream derived from the scenario
//                     master seed (see fault::Injector).
//
// An empty plan is the default everywhere and must be indistinguishable
// from not having a fault layer at all: no RNG draws, no events, no
// extra work on any hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace wmn::fault {

struct NodeOutage {
  std::uint32_t node = 0;
  sim::Time down_at{};
  sim::Time up_at{};
};

struct LinkBlackout {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  sim::Time from{};
  sim::Time to{};
  // Extra path loss during the window. 200 dB pushes any realistic
  // link far below the detection floor — a severed link — while
  // smaller values model deep fades.
  double attenuation_db = 200.0;
  bool bidirectional = true;
};

struct ChurnSpec {
  double rate_per_s = 0.0;  // crash events per second (0 = off)
  sim::Time mean_downtime = sim::Time::seconds(10.0);
  sim::Time start{};
  sim::Time stop{};

  [[nodiscard]] bool enabled() const {
    return rate_per_s > 0.0 && stop > start;
  }
};

struct FaultPlan {
  std::vector<NodeOutage> outages;
  std::vector<LinkBlackout> blackouts;
  ChurnSpec churn;

  [[nodiscard]] bool empty() const {
    return outages.empty() && blackouts.empty() && !churn.enabled();
  }
};

}  // namespace wmn::fault
