#include "fault/injector.hpp"

#include <algorithm>
#include <utility>

#include "core/check.hpp"

namespace wmn::fault {

Injector::Injector(sim::Simulator& simulator, FaultPlan plan,
                   std::vector<NodeHooks> hooks)
    : sim_(simulator),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      down_(hooks_.size(), 0),
      epoch_(hooks_.size(), 0),
      open_window_(hooks_.size(), 0),
      churn_rng_(simulator.make_stream(kFaultStreamSalt)) {
  const auto n = static_cast<std::uint32_t>(hooks_.size());

  for (const NodeOutage& o : plan_.outages) {
    WMN_CHECK(o.node < n, "outage for a node outside the topology");
    WMN_CHECK(o.down_at < o.up_at, "outage window must have positive length");
    const std::uint32_t node = o.node;
    const sim::Time up_at = o.up_at;
    sim_.schedule_at(o.down_at, [this, node, up_at] { crash_node(node, up_at); });
  }

  for (const LinkBlackout& b : plan_.blackouts) {
    WMN_CHECK(b.a < n && b.b < n, "blackout for a node outside the topology");
    WMN_CHECK(b.a != b.b, "blackout needs two distinct endpoints");
    WMN_CHECK(b.from < b.to, "blackout window must have positive length");
    WMN_CHECK_GE(b.attenuation_db, 0.0, "blackout attenuation must be >= 0");
    ++counters_.blackouts;
    // The window is fully known up front; record it now and only toggle
    // the active list from the scheduled events.
    windows_.push_back(Window{b.from, b.to, false, false});
    const ActiveBlackout entry{b.a, b.b, b.attenuation_db, b.bidirectional};
    sim_.schedule_at(b.from, [this, entry] { active_.push_back(entry); });
    sim_.schedule_at(b.to, [this, entry] {
      const auto it = std::find_if(
          active_.begin(), active_.end(), [&entry](const ActiveBlackout& x) {
            return x.a == entry.a && x.b == entry.b &&
                   x.loss_db == entry.loss_db &&
                   x.bidirectional == entry.bidirectional;
          });
      WMN_CHECK(it != active_.end(), "blackout ended but was never active");
      active_.erase(it);
    });
  }

  if (plan_.churn.enabled()) {
    WMN_CHECK_GT(plan_.churn.mean_downtime.ns(), std::int64_t{0},
                 "churn needs a positive mean downtime");
    WMN_CHECK_GT(n, 0u, "churn needs at least one node");
    schedule_next_churn();
  }
}

double Injector::link_loss_db(std::uint32_t tx, std::uint32_t rx,
                              sim::Time /*now*/) const {
  if (active_.empty()) return 0.0;
  double loss = 0.0;
  for (const ActiveBlackout& b : active_) {
    const bool forward = b.a == tx && b.b == rx;
    const bool reverse = b.bidirectional && b.a == rx && b.b == tx;
    if (forward || reverse) loss += b.loss_db;
  }
  return loss;
}

bool Injector::in_fault_window(sim::Time t) const {
  for (const Window& w : windows_) {
    if (t < w.start) continue;
    if (w.open || t < w.end) return true;
  }
  return false;
}

sim::Time Injector::total_node_downtime(sim::Time now) const {
  sim::Time total{};
  for (const Window& w : windows_) {
    if (!w.node_outage) continue;
    total += (w.open ? now : w.end) - w.start;
  }
  return total;
}

void Injector::crash_node(std::uint32_t node, sim::Time up_at) {
  // Overlapping schedules (static outage vs. churn): whoever crashed
  // the node first owns it until its rejoin fires.
  if (down_[node] != 0) return;
  const NodeHooks& h = hooks_[node];
  WMN_CHECK_NOTNULL(h.agent, "crash injection needs an agent hook");
  WMN_CHECK_NOTNULL(h.mac, "crash injection needs a MAC hook");
  WMN_CHECK_NOTNULL(h.phy, "crash injection needs a phy hook");

  down_[node] = 1;
  ++epoch_[node];
  ++counters_.crashes;
  open_window_[node] = windows_.size();
  windows_.push_back(Window{sim_.now(), sim::Time{}, true, true});

  // Top-down: routing stops first so no lower layer can call back into
  // a half-dead agent.
  h.agent->pause();
  h.mac->power_down();
  h.phy->set_up(false);

  const std::uint64_t epoch = epoch_[node];
  sim_.schedule_at(up_at, [this, node, epoch] { rejoin_node(node, epoch); });
}

void Injector::rejoin_node(std::uint32_t node, std::uint64_t epoch) {
  // A stale rejoin (the node was re-crashed and re-owned meanwhile)
  // must not resurrect it early.
  if (down_[node] == 0 || epoch_[node] != epoch) return;

  down_[node] = 0;
  ++counters_.rejoins;
  Window& w = windows_[open_window_[node]];
  WMN_CHECK(w.open && w.node_outage, "rejoin closing the wrong window");
  w.end = sim_.now();
  w.open = false;

  // Bottom-up: each layer comes back onto a live substrate.
  const NodeHooks& h = hooks_[node];
  h.phy->set_up(true);
  h.mac->power_up();
  h.agent->resume();
}

void Injector::schedule_next_churn() {
  const double mean_gap_s = 1.0 / plan_.churn.rate_per_s;
  const sim::Time base = std::max(sim_.now(), plan_.churn.start);
  const sim::Time t =
      base + sim::Time::seconds(churn_rng_.exponential(mean_gap_s));
  if (t >= plan_.churn.stop) return;  // churn season over
  sim_.schedule_at(t, [this] { churn_event(); });
}

void Injector::churn_event() {
  const auto victim = static_cast<std::uint32_t>(
      churn_rng_.uniform_u64(0, down_.size() - 1));
  if (down_[victim] == 0) {
    // Clamp tiny downtime draws: a sub-100ms reboot is not a fault
    // worth modelling and would just thrash the timers.
    const double down_s = std::max(
        0.1, churn_rng_.exponential(plan_.churn.mean_downtime.to_seconds()));
    crash_node(victim, sim_.now() + sim::Time::seconds(down_s));
  }
  // A victim that was already down still consumed this event slot; the
  // process rate is over attempts, which keeps the draw sequence
  // independent of network state.
  schedule_next_churn();
}

}  // namespace wmn::fault
