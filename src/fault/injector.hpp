// Executes a FaultPlan against a built node stack.
//
// The Injector is the one place that knows the crash choreography:
//
//   crash:  agent.pause() -> mac.power_down() -> phy.set_up(false)
//   rejoin: phy.set_up(true) -> mac.power_up() -> agent.resume()
//
// (routing first on the way down so no layer below can call back into
// a half-dead agent; reverse on the way up so every layer an upper one
// relies on is already alive).
//
// It also implements phy::FaultOverlay, which the channel consults per
// transmission for crashed receivers and blacked-out links, and it
// records every realized fault window so metrics can classify traffic
// as sent during/outside outages (`in_fault_window`).
//
// Determinism: all scheduled faults come from the plan; churn draws
// inter-arrival gaps, victims, and downtimes from a single RNG stream
// derived from the scenario master seed (kFaultStreamSalt), consumed in
// event order — so a (plan, seed) pair replays bit-identically, and an
// empty plan draws nothing at all.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mac/dcf_mac.hpp"
#include "phy/fault_overlay.hpp"
#include "phy/wifi_phy.hpp"
#include "routing/aodv.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace wmn::fault {

inline constexpr std::uint64_t kFaultStreamSalt = 0xFA17'0000'0000'0000ULL;

// Per-node layer handles. Pointers may be null only when the plan can
// never crash that node (e.g. a blackout-only plan in a micro-bench).
struct NodeHooks {
  phy::WifiPhy* phy = nullptr;
  mac::DcfMac* mac = nullptr;
  routing::AodvAgent* agent = nullptr;
};

class Injector final : public phy::FaultOverlay {
 public:
  Injector(sim::Simulator& simulator, FaultPlan plan,
           std::vector<NodeHooks> hooks);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  // --- phy::FaultOverlay -----------------------------------------------
  [[nodiscard]] bool node_up(std::uint32_t node) const override {
    return node >= down_.size() || down_[node] == 0;
  }
  [[nodiscard]] double link_loss_db(std::uint32_t tx, std::uint32_t rx,
                                    sim::Time now) const override;

  // True when `t` falls inside any realized fault window (node outage
  // or link blackout). Used to split PDR into during/outside-outage.
  [[nodiscard]] bool in_fault_window(sim::Time t) const;

  // Total realized node downtime up to `now` (open outages included).
  [[nodiscard]] sim::Time total_node_downtime(sim::Time now) const;

  struct Counters {
    std::uint64_t crashes = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t blackouts = 0;  // windows scheduled
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct Window {
    sim::Time start{};
    sim::Time end{};
    bool open = false;        // end not yet known (node still down)
    bool node_outage = false; // vs. link blackout
  };
  struct ActiveBlackout {
    std::uint32_t a;
    std::uint32_t b;
    double loss_db;
    bool bidirectional;
  };

  void crash_node(std::uint32_t node, sim::Time up_at);
  void rejoin_node(std::uint32_t node, std::uint64_t epoch);
  void schedule_next_churn();
  void churn_event();

  sim::Simulator& sim_;
  FaultPlan plan_;
  std::vector<NodeHooks> hooks_;

  std::vector<std::uint8_t> down_;       // 1 while crashed
  std::vector<std::uint64_t> epoch_;     // guards stale rejoin events
  std::vector<std::size_t> open_window_; // index into windows_ while down
  std::vector<ActiveBlackout> active_;   // blackouts in force right now
  std::vector<Window> windows_;          // realized fault history

  sim::RngStream churn_rng_;
  Counters counters_;
};

}  // namespace wmn::fault
