// Student-t confidence intervals over independent replications.
#pragma once

#include <span>

namespace wmn::stats {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // mean ± half_width
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

// Two-sided 95% t critical value for `df` degrees of freedom
// (df >= 1; large df asymptotes to 1.960).
[[nodiscard]] double t_critical_95(std::size_t df);

// 95% CI of the mean of independent samples. One sample: half-width 0.
[[nodiscard]] ConfidenceInterval mean_ci_95(std::span<const double> samples);

}  // namespace wmn::stats
