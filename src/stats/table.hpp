// Result-table rendering: aligned console tables (the paper-style
// figure/table output every bench prints) and CSV export.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace wmn::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // All rows must have exactly the column count.
  void add_row(std::vector<std::string> cells);

  // Numeric convenience: formats with the given precision.
  static std::string num(double v, int precision = 3);

  // Render as an aligned console table.
  void print(std::ostream& os) const;

  // Render as CSV (RFC-4180-ish quoting of commas/quotes).
  void write_csv(std::ostream& os) const;

  // Write CSV to a file path; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return columns_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wmn::stats
