// Analytical saturation model of the DCF MAC (Bianchi 2000).
//
// The source research group pairs every simulation study with an
// analytical performance model; this is the matching one for our MAC.
// Under saturation (every station always has a frame) in a single
// collision domain, the per-station transmission probability tau and
// conditional collision probability p solve the fixed point
//
//   tau = 2(1-2p) / ((1-2p)(W+1) + p W (1-(2p)^m))
//   p   = 1 - (1-tau)^(n-1)
//
// with W = CWmin+1 and m backoff stages; aggregate throughput follows
// from the slot-time decomposition. The bench `bench_a1_analytic`
// validates the model against the simulator; agreement within ~10-15%
// is the expected fidelity for this model family (our MAC's ACK-timeout
// collision cost differs slightly from Bianchi's idealized Tc).
#pragma once

#include <cstdint>

namespace wmn::stats {

struct DcfModelParams {
  std::uint32_t n_stations = 10;
  std::uint32_t cw_min = 31;   // W-1, as configured in mac::MacConfig
  std::uint32_t cw_max = 1023;
  double bit_rate_bps = 2e6;
  double payload_bytes = 512;
  double mac_header_bytes = 28;
  double ack_bytes = 14;
  double preamble_s = 192e-6;
  double slot_s = 20e-6;
  double sifs_s = 10e-6;
  double difs_s = 50e-6;
  double ack_timeout_slack_s = 60e-6;
};

struct DcfModelResult {
  double tau = 0.0;            // per-station TX probability per slot
  double p_collision = 0.0;    // conditional collision probability
  double throughput_bps = 0.0; // aggregate delivered payload bits/s
  double ts_s = 0.0;           // successful-exchange duration
  double tc_s = 0.0;           // collision duration
  int iterations = 0;          // fixed-point iterations used
};

// Solve the fixed point by damped iteration; converges for all
// physically meaningful parameters.
[[nodiscard]] DcfModelResult solve_dcf_saturation(const DcfModelParams& params);

}  // namespace wmn::stats
