#include "stats/fairness.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace wmn::stats {

namespace {
// Negative load is a caller bug (loads are counts or rates); flag it
// and clamp so the indices keep their documented ranges.
double sanitize(double x) {
  WMN_CHECK_GE(x, 0.0, "fairness inputs must be non-negative");
  return std::max(x, 0.0);
}
}  // namespace

double jain_index(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double raw : xs) {
    const double x = sanitize(raw);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

double peak_to_mean(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double peak = 0.0;
  for (double raw : xs) {
    const double x = sanitize(raw);
    sum += x;
    peak = std::max(peak, x);
  }
  if (sum <= 0.0) return 1.0;
  const double mean = sum / static_cast<double>(xs.size());
  return peak / mean;
}

double load_variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double sum = 0.0;
  for (double raw : xs) sum += sanitize(raw);
  const double mean = sum / static_cast<double>(xs.size());
  double acc = 0.0;
  for (double raw : xs) {
    const double d = std::max(raw, 0.0) - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

}  // namespace wmn::stats
