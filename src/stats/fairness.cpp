#include "stats/fairness.hpp"

#include <algorithm>

namespace wmn::stats {

double jain_index(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

double peak_to_mean(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double peak = 0.0;
  for (double x : xs) {
    sum += x;
    peak = std::max(peak, x);
  }
  if (sum <= 0.0) return 1.0;
  const double mean = sum / static_cast<double>(xs.size());
  return peak / mean;
}

}  // namespace wmn::stats
