// Fixed-bin histogram with under/overflow buckets and quantile
// estimation by linear interpolation within bins.
#pragma once

#include <cstdint>
#include <vector>

namespace wmn::stats {

class Histogram {
 public:
  // [lo, hi) divided into `bins` equal-width buckets.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bin_count_size() const { return bins_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  // Approximate quantile (q in [0,1]); clamps into [lo, hi].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace wmn::stats
