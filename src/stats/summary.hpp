// Online summary statistics (Welford's algorithm): numerically stable
// single-pass mean/variance with min/max, plus merge (parallel
// reduction over replications uses it).
#pragma once

#include <cstdint>
#include <limits>

namespace wmn::stats {

class Summary {
 public:
  void add(double x);

  // Combine two summaries (Chan et al. parallel variance update).
  void merge(const Summary& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace wmn::stats
