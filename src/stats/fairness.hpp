// Load-distribution fairness measures for the F8/F11 experiments.
//
// Inputs are load shares (forwarded frames, delivered packets, ...) and
// must be non-negative; a negative element trips a WMN_CHECK and is
// treated as zero so the indices stay within their documented ranges
// under CheckPolicy::kLogAndCount.
#pragma once

#include <span>

namespace wmn::stats {

// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1];
// 1 = perfectly even, 1/n = all load on one node. Empty/all-zero
// input returns 1 (vacuously fair).
[[nodiscard]] double jain_index(std::span<const double> xs);

// Peak-to-mean ratio: how much hotter the hottest node runs than the
// average (>= 1; 1 = perfectly even). All-zero input returns 1.
[[nodiscard]] double peak_to_mean(std::span<const double> xs);

// Population variance of the loads (0 for empty or single-element
// input). F11 reports this over per-gateway delivered load: hotspot
// collapse shows up as variance exploding while Jain falls.
[[nodiscard]] double load_variance(std::span<const double> xs);

}  // namespace wmn::stats
