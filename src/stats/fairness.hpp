// Load-distribution fairness measures for the F8 experiment.
#pragma once

#include <span>

namespace wmn::stats {

// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1];
// 1 = perfectly even, 1/n = all load on one node. Empty/all-zero
// input returns 1 (vacuously fair).
[[nodiscard]] double jain_index(std::span<const double> xs);

// Peak-to-mean ratio: how much hotter the hottest node runs than the
// average (>= 1; 1 = perfectly even). All-zero input returns 1.
[[nodiscard]] double peak_to_mean(std::span<const double> xs);

}  // namespace wmn::stats
