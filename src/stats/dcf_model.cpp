#include "stats/dcf_model.hpp"

#include <cmath>

#include "core/check.hpp"

namespace wmn::stats {

namespace {
double tau_of_p(double p, double w, double m) {
  // Bianchi eq. (7) with W = CWmin+1 and m backoff stages.
  const double num = 2.0 * (1.0 - 2.0 * p);
  const double den = (1.0 - 2.0 * p) * (w + 1.0) +
                     p * w * (1.0 - std::pow(2.0 * p, m));
  return num / den;
}
}  // namespace

DcfModelResult solve_dcf_saturation(const DcfModelParams& params) {
  WMN_CHECK_GE(params.n_stations, 2u,
               "Bianchi model needs at least two stations");
  DcfModelResult r;
  const double n = static_cast<double>(params.n_stations);
  const double w = static_cast<double>(params.cw_min) + 1.0;
  const double m = std::log2((static_cast<double>(params.cw_max) + 1.0) / w);

  // Damped fixed-point iteration on p.
  double p = 0.1;
  double tau = 0.0;
  int it = 0;
  for (; it < 10000; ++it) {
    tau = tau_of_p(p, w, m);
    const double p_next = 1.0 - std::pow(1.0 - tau, n - 1.0);
    if (std::abs(p_next - p) < 1e-12) {
      p = p_next;
      break;
    }
    p = 0.5 * p + 0.5 * p_next;
  }
  r.tau = tau;
  r.p_collision = p;
  r.iterations = it;

  // Slot-time decomposition.
  const double p_tr = 1.0 - std::pow(1.0 - tau, n);
  const double p_s = p_tr <= 0.0
                         ? 0.0
                         : n * tau * std::pow(1.0 - tau, n - 1.0) / p_tr;

  const double t_data = params.preamble_s +
                        (params.payload_bytes + params.mac_header_bytes) * 8.0 /
                            params.bit_rate_bps;
  const double t_ack =
      params.preamble_s + params.ack_bytes * 8.0 / params.bit_rate_bps;
  // Success: DATA + SIFS + ACK + DIFS. Collision: DATA + full ACK
  // timeout + DIFS (our MAC waits the whole timeout before retrying).
  r.ts_s = t_data + params.sifs_s + t_ack + params.difs_s;
  r.tc_s = t_data + params.sifs_s + t_ack + params.ack_timeout_slack_s +
           params.difs_s;

  const double payload_bits = params.payload_bytes * 8.0;
  const double denom = (1.0 - p_tr) * params.slot_s + p_tr * p_s * r.ts_s +
                       p_tr * (1.0 - p_s) * r.tc_s;
  r.throughput_bps = denom <= 0.0 ? 0.0 : p_tr * p_s * payload_bits / denom;
  return r;
}

}  // namespace wmn::stats
