#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace wmn::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), bins_(bins, 0) {
  WMN_CHECK(hi > lo && bins > 0, "histogram needs a non-empty range");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  ++bins_[std::min(i, bins_.size() - 1)];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (target <= next && bins_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(bins_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

}  // namespace wmn::stats
