#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace wmn::stats {

void Summary::add(double x) {
  ++n_;
  const double d1 = x - mean_;
  mean_ += d1 / static_cast<double>(n_);
  m2_ += d1 * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

}  // namespace wmn::stats
