#include "stats/confidence.hpp"

#include <array>
#include <cmath>

namespace wmn::stats {

double t_critical_95(std::size_t df) {
  // Standard table, df 1..30; beyond that the normal approximation is
  // within 0.3%.
  static constexpr std::array<double, 30> kTable{
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= kTable.size()) return kTable[df - 1];
  return 1.960;
}

ConfidenceInterval mean_ci_95(std::span<const double> samples) {
  ConfidenceInterval ci;
  const std::size_t n = samples.size();
  if (n == 0) return ci;
  double sum = 0.0;
  for (double x : samples) sum += x;
  ci.mean = sum / static_cast<double>(n);
  if (n < 2) return ci;
  double ss = 0.0;
  for (double x : samples) ss += (x - ci.mean) * (x - ci.mean);
  const double sd = std::sqrt(ss / static_cast<double>(n - 1));
  ci.half_width =
      t_critical_95(n - 1) * sd / std::sqrt(static_cast<double>(n));
  return ci;
}

}  // namespace wmn::stats
