#include "stats/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/check.hpp"

namespace wmn::stats {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  WMN_CHECK(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  WMN_CHECK_EQ(cells.size(), columns_.size(),
               "row width must match the column count");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(columns_);
  os << "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

}  // namespace wmn::stats
